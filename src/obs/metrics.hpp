#pragma once

// obs/metrics — the always-on metrics substrate: named counters, callback
// gauges, and log-bucketed latency histograms behind a process-wide
// registry with Prometheus-style text exposition and a JSON dump.
//
// Design constraints, in order:
//
//   (1) Hot-path writes must be wait-free and contention-free. Counter and
//       Histogram shard their state across cache-line-padded per-thread
//       slots (a stable thread-local shard index, assigned round-robin on
//       first touch); add/observe is one relaxed fetch_add on the caller's
//       shard, no CAS loops except the histogram min/max.
//   (2) Per-instance semantics must survive registration. Components like
//       SolveService keep per-instance counters (two services in one test
//       process must not see each other's numbers), so Registry::counter()
//       returns a NEW collector every call and the scrape SUMS all live
//       same-named collectors. ServiceStats stays a view over the
//       instance's own handles; the registry view is the fleet total.
//   (3) No ownership cycles: the registry holds weak_ptrs to collectors
//       and prunes dead ones on scrape. Callback metrics (gauges, and
//       counters that already live behind a component's lock) are
//       registered with an RAII handle whose destruction unregisters —
//       declare handles LAST in the owning class so they die FIRST.
//
// Reads (value(), snapshot(), scrape) are relaxed merges: each is a
// monotone, slightly-stale-but-consistent-enough view, the standard
// sharded-metrics contract. Exact totals are observable at any quiescent
// point (e.g. after SolveService::shutdown()), which is what the stats
// tests rely on.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gvc::obs {

namespace detail {

/// Number of write shards for Counter/Histogram. Threads hash onto shards
/// round-robin; 16 padded slots absorb the service's worker counts without
/// false sharing.
inline constexpr int kShards = 16;

/// Stable per-thread shard index in [0, kShards).
int shard_index() noexcept;

}  // namespace detail

// ---------------------------------------------------------------------------
// Counter — a monotone uint64, sharded for write scalability.
// ---------------------------------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[static_cast<std::size_t>(detail::shard_index())].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

// ---------------------------------------------------------------------------
// Histogram — log-bucketed latency histogram over nanoseconds.
//
// Buckets: values 0..7 get exact unit buckets; every octave above is split
// into 8 sub-buckets, so a quantile read from a bucket upper bound is at
// most 12.5% above the true sample value. 496 buckets cover the full u64
// range (0 ns .. ~584 years), so there is no overflow bucket to saturate.
// ---------------------------------------------------------------------------

class Histogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per octave
  static constexpr int kBucketCount = (64 - kSubBits + 1) * kSub;  // 496

  /// Bucket holding `ns`. Exact for ns < 8; log-bucketed above.
  static int bucket_index(std::uint64_t ns) noexcept {
    if (ns < static_cast<std::uint64_t>(kSub)) return static_cast<int>(ns);
    const int msb = 63 - std::countl_zero(ns);
    const int sub =
        static_cast<int>((ns >> (msb - kSubBits)) & (kSub - 1));
    return (msb - kSubBits + 1) * kSub + sub;
  }

  /// Largest value landing in bucket `index` (inclusive upper bound).
  static std::uint64_t bucket_upper_ns(int index) noexcept {
    if (index < kSub) return static_cast<std::uint64_t>(index);
    const int octave = index >> kSubBits;         // >= 1
    const int msb = octave + kSubBits - 1;        // 3..63
    const std::uint64_t sub = static_cast<std::uint64_t>(index & (kSub - 1));
    const std::uint64_t width = std::uint64_t{1} << (msb - kSubBits);
    return (std::uint64_t{1} << msb) + (sub + 1) * width - 1;
  }

  Histogram();

  void observe_ns(std::uint64_t ns) noexcept;
  void observe_seconds(double s) noexcept {
    observe_ns(s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  /// Merged point-in-time view; all quantile math happens on the snapshot
  /// so one scrape pays the shard merge once.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};

    /// Upper bound of the bucket holding the q-quantile sample, clamped to
    /// the observed [min, max]. Returns 0 on an empty snapshot (no abort:
    /// scrapes must not die on idle histograms, unlike util::quantile).
    std::uint64_t quantile_ns(double q) const noexcept;
    double quantile_seconds(double q) const noexcept {
      return static_cast<double>(quantile_ns(q)) / 1e9;
    }
    double sum_seconds() const noexcept {
      return static_cast<double>(sum_ns) / 1e9;
    }
    double mean_seconds() const noexcept {
      return count == 0 ? 0.0 : sum_seconds() / static_cast<double>(count);
    }
    double max_seconds() const noexcept {
      return static_cast<double>(max_ns) / 1e9;
    }
    void merge(const Snapshot& other) noexcept;
  };

  Snapshot snapshot() const;

 private:
  struct Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
  };
  // Shards are heap-allocated (each is ~4 KB) so an idle Histogram member
  // doesn't bloat its owner; the array of pointers itself is immutable
  // after construction.
  std::array<std::unique_ptr<Shard>, detail::kShards> shards_;
};

// ---------------------------------------------------------------------------
// Registry — process-wide name → collector families.
// ---------------------------------------------------------------------------

class Registry {
 public:
  /// The process-wide registry every component registers into.
  static Registry& global();

  /// Create a NEW counter/histogram instance under `name`. Same-named
  /// instances form a family; the scrape output is the family sum.
  std::shared_ptr<Counter> counter(const std::string& name,
                                   const std::string& help = "");
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       const std::string& help = "");

  /// RAII registration of a callback metric; destruction unregisters.
  /// Movable, not copyable.
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& o) noexcept
        : registry_(o.registry_), name_(std::move(o.name_)), id_(o.id_) {
      o.registry_ = nullptr;
    }
    CallbackHandle& operator=(CallbackHandle&& o) noexcept {
      if (this != &o) {
        reset();
        registry_ = o.registry_;
        name_ = std::move(o.name_);
        id_ = o.id_;
        o.registry_ = nullptr;
      }
      return *this;
    }
    ~CallbackHandle() { reset(); }
    void reset();

   private:
    friend class Registry;
    CallbackHandle(Registry* r, std::string name, std::uint64_t id)
        : registry_(r), name_(std::move(name)), id_(id) {}
    Registry* registry_ = nullptr;
    std::string name_;
    std::uint64_t id_ = 0;
  };

  /// Point-in-time gauge backed by a callback. The callback runs under the
  /// registry mutex during a scrape; it may take the owning component's
  /// lock, so components must never scrape while holding that lock.
  [[nodiscard]] CallbackHandle gauge(const std::string& name,
                                     const std::string& help,
                                     std::function<double()> fn);

  /// Cumulative counter backed by a callback — for components whose
  /// counters already live behind their own mutex (JobQueue, ResultCache).
  [[nodiscard]] CallbackHandle counter_fn(const std::string& name,
                                          const std::string& help,
                                          std::function<double()> fn);

  /// Prometheus text exposition format (families sorted by name).
  std::string prometheus_text() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  std::string json_text() const;

  /// Family sum for tests and tools; 0 if the name is unknown.
  std::uint64_t counter_value(const std::string& name) const;

 private:
  struct CounterFamily {
    std::string help;
    std::vector<std::weak_ptr<Counter>> items;
  };
  struct HistogramFamily {
    std::string help;
    std::vector<std::weak_ptr<Histogram>> items;
  };
  struct CallbackFamily {
    std::string help;
    bool cumulative = false;  // true => exposed as TYPE counter
    std::vector<std::pair<std::uint64_t, std::function<double()>>> items;
  };

  CallbackHandle register_callback(const std::string& name,
                                   const std::string& help, bool cumulative,
                                   std::function<double()> fn);
  void unregister_callback(const std::string& name, std::uint64_t id);

  mutable std::mutex mutex_;
  std::map<std::string, CounterFamily> counters_;
  std::map<std::string, HistogramFamily> histograms_;
  std::map<std::string, CallbackFamily> callbacks_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace gvc::obs
