#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/timer.hpp"

namespace gvc::obs {

const char* trace_cat_name(TraceCat c) {
  switch (c) {
    case TraceCat::kService: return "service";
    case TraceCat::kSolve: return "solve";
    case TraceCat::kReduce: return "reduce";
    case TraceCat::kBranch: return "branch";
    case TraceCat::kWork: return "work";
    case TraceCat::kCache: return "cache";
    case TraceCat::kNet: return "net";
  }
  return "?";
}

namespace detail {

#ifdef GVC_OBS_DISABLED
namespace {
std::atomic<bool> g_trace_on{false};
}
#else
std::atomic<bool> g_trace_on{false};
#endif

namespace {

struct Event {
  std::uint64_t ts_ns;
  const char* name;
  const char* arg_name;  // nullptr => no args
  std::int64_t arg;
  TraceCat cat;
  char phase;  // 'B', 'E', 'i'
};

struct Buffer {
  std::vector<Event> events;  // pre-sized to capacity; indexed via count
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::size_t capacity = 0;
  int open_spans = 0;  // owner thread only; reserves E slots
  int tid = 0;
  std::string label;  // guarded by the session mutex
};

struct Session {
  TraceOptions opts;
  std::uint64_t t0_ns = 0;
  bool ever_started = false;
  std::vector<std::unique_ptr<Buffer>> buffers;
  // Buffers from earlier sessions: kept alive forever so a thread caught
  // between its enabled-check and its write can never touch freed memory.
  std::vector<std::unique_ptr<Buffer>> retired;
  std::vector<int> free_ids;  // buffers released by exited threads
};

// Immortal globals: thread_local destructors and atexit exporters must be
// able to touch them in any order.
std::mutex& session_mutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
Session& session() {
  static Session* s = new Session();
  return *s;
}

std::atomic<std::uint64_t> g_epoch{1};

struct ThreadSlot {
  Buffer* buf = nullptr;  // nullptr with matching epoch => traced out (cap)
  std::uint64_t epoch = 0;
  std::uint64_t t0_ns = 0;
  std::uint32_t sample_every = 64;
  std::uint32_t sample_ctr = 0;
  std::string pending_label;

  ~ThreadSlot() {
    if (buf == nullptr) return;
    std::lock_guard<std::mutex> lock(session_mutex());
    // Only release into the session the buffer belongs to.
    if (epoch == g_epoch.load(std::memory_order_relaxed))
      session().free_ids.push_back(buf->tid);
  }
};

thread_local ThreadSlot tl;

Buffer* register_thread() {
  if (!g_trace_on.load(std::memory_order_relaxed)) return nullptr;
  std::lock_guard<std::mutex> lock(session_mutex());
  if (!g_trace_on.load(std::memory_order_relaxed)) return nullptr;
  Session& s = session();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);

  Buffer* b = nullptr;
  if (!s.free_ids.empty()) {
    // Reuse a buffer released by an exited thread: its final writes
    // happened before the release (mutex in ~ThreadSlot), so appending is
    // race-free, and its tid stays monotone in ts.
    b = s.buffers[static_cast<std::size_t>(s.free_ids.back())].get();
    s.free_ids.pop_back();
  } else if (s.buffers.size() < s.opts.max_threads) {
    auto nb = std::make_unique<Buffer>();
    nb->capacity = s.opts.capacity_per_thread;
    nb->events.resize(nb->capacity);
    nb->tid = static_cast<int>(s.buffers.size());
    b = nb.get();
    s.buffers.push_back(std::move(nb));
  }
  if (b != nullptr && b->label.empty() && !tl.pending_label.empty())
    b->label = tl.pending_label;

  // Cache the refusal too (b == nullptr at the thread cap): subsequent
  // hooks on this thread then skip without taking the mutex.
  tl.buf = b;
  tl.epoch = epoch;
  tl.t0_ns = s.t0_ns;
  tl.sample_every = s.opts.sample_every;
  return b;
}

inline Buffer* current_buffer() {
  if (tl.epoch == g_epoch.load(std::memory_order_relaxed)) return tl.buf;
  return register_thread();
}

inline std::uint64_t rel_now_ns() { return util::now_ns() - tl.t0_ns; }

}  // namespace

std::uint64_t current_epoch() noexcept {
  return g_epoch.load(std::memory_order_relaxed);
}

void instant_slow(TraceCat cat, const char* name, const char* arg_name,
                  std::int64_t arg) {
  Buffer* b = current_buffer();
  if (b == nullptr) return;
  const std::size_t n = b->count.load(std::memory_order_relaxed);
  // Keep one slot reserved per open span for its pending E.
  if (n + static_cast<std::size_t>(b->open_spans) + 1 > b->capacity) {
    b->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b->events[n] = Event{rel_now_ns(), name, arg_name, arg, cat, 'i'};
  b->count.store(n + 1, std::memory_order_release);
}

bool begin_slow(TraceCat cat, const char* name, const char* arg_name,
                std::int64_t arg) {
  Buffer* b = current_buffer();
  if (b == nullptr) return false;
  const std::size_t n = b->count.load(std::memory_order_relaxed);
  // Room for this B, its own E, and the E of every already-open span.
  if (n + static_cast<std::size_t>(b->open_spans) + 2 > b->capacity) {
    b->dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  b->events[n] = Event{rel_now_ns(), name, arg_name, arg, cat, 'B'};
  b->count.store(n + 1, std::memory_order_release);
  ++b->open_spans;
  return true;
}

void end_slow(const char* name, std::uint64_t epoch) {
  // The session the B went into is gone: its buffer is retired and the
  // exporter already (or will) synthesize the close.
  if (epoch != g_epoch.load(std::memory_order_relaxed)) return;
  Buffer* b = tl.buf;
  if (b == nullptr) return;
  const std::size_t n = b->count.load(std::memory_order_relaxed);
  // A slot is guaranteed: begin_slow reserved it. Recorded even when
  // tracing has stopped, to keep the buffer's B/E pairing balanced.
  b->events[n] = Event{rel_now_ns(), name, nullptr, 0, TraceCat::kService,
                       'E'};
  b->count.store(n + 1, std::memory_order_release);
  --b->open_spans;
}

bool sample_slow() noexcept {
  if (tl.epoch != g_epoch.load(std::memory_order_relaxed)) {
    if (register_thread() == nullptr) return false;
  }
  return tl.sample_ctr++ % tl.sample_every == 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Session control
// ---------------------------------------------------------------------------

bool trace_start(const TraceOptions& opts) {
#ifdef GVC_OBS_DISABLED
  (void)opts;
  return false;
#else
  std::lock_guard<std::mutex> lock(detail::session_mutex());
  if (detail::g_trace_on.load(std::memory_order_relaxed)) return false;
  detail::Session& s = detail::session();
  for (auto& b : s.buffers) s.retired.push_back(std::move(b));
  s.buffers.clear();
  s.free_ids.clear();
  s.opts = opts;
  s.opts.capacity_per_thread = std::max<std::size_t>(64, opts.capacity_per_thread);
  s.opts.sample_every = std::max<std::uint32_t>(1, opts.sample_every);
  s.opts.max_threads = std::max<std::size_t>(1, opts.max_threads);
  s.t0_ns = util::now_ns();
  s.ever_started = true;
  detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_trace_on.store(true, std::memory_order_release);
  return true;
#endif
}

bool trace_stop() {
#ifdef GVC_OBS_DISABLED
  return false;
#else
  std::lock_guard<std::mutex> lock(detail::session_mutex());
  if (!detail::g_trace_on.load(std::memory_order_relaxed)) return false;
  detail::g_trace_on.store(false, std::memory_order_release);
  return true;
#endif
}

TraceSummary trace_summary() {
  TraceSummary out;
  std::lock_guard<std::mutex> lock(detail::session_mutex());
  const detail::Session& s = detail::session();
  out.threads = s.buffers.size();
  for (const auto& b : s.buffers) {
    out.events += b->count.load(std::memory_order_acquire);
    out.dropped += b->dropped.load(std::memory_order_relaxed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

struct FlatEvent {
  detail::Event ev;
  int tid;
};

void append_event_json(std::string& out, const FlatEvent& f, bool& first) {
  char buf[160];
  out += first ? "\n" : ",\n";
  first = false;
  out += "{\"name\":\"";
  append_json_escaped(out, f.ev.name);
  out += "\",\"cat\":\"";
  out += trace_cat_name(f.ev.cat);
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d",
                f.ev.phase, static_cast<double>(f.ev.ts_ns) / 1000.0, f.tid);
  out += buf;
  if (f.ev.arg_name != nullptr) {
    out += ",\"args\":{\"";
    append_json_escaped(out, f.ev.arg_name);
    std::snprintf(buf, sizeof(buf), "\":%" PRId64 "}",
                  static_cast<std::int64_t>(f.ev.arg));
    out += buf;
  }
  out += "}";
}

}  // namespace

bool trace_write_chrome_json(std::ostream& os) {
  std::lock_guard<std::mutex> lock(detail::session_mutex());
  detail::Session& s = detail::session();
  if (!s.ever_started) return false;

  std::vector<FlatEvent> all;
  std::vector<std::pair<int, std::string>> labels;
  for (const auto& b : s.buffers) {
    const std::size_t n = b->count.load(std::memory_order_acquire);
    all.reserve(all.size() + n);
    for (std::size_t i = 0; i < n; ++i)
      all.push_back(FlatEvent{b->events[i], b->tid});
    if (!b->label.empty()) labels.emplace_back(b->tid, b->label);
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const FlatEvent& a, const FlatEvent& b) {
                     return a.ev.ts_ns < b.ev.ts_ns;
                   });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const auto& [tid, label] : labels) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  tid);
    out += buf;
    append_json_escaped(out, label.c_str());
    out += "\"}}";
  }

  // Per-tid open-span stacks, to synthesize closes for spans still open at
  // export (so trace_check's balance invariant holds on every file).
  std::vector<std::vector<const char*>> open;
  std::uint64_t last_ts = 0;
  for (const auto& f : all) {
    append_event_json(out, f, first);
    last_ts = f.ev.ts_ns;
    auto id = static_cast<std::size_t>(f.tid);
    if (id >= open.size()) open.resize(id + 1);
    if (f.ev.phase == 'B') open[id].push_back(f.ev.name);
    else if (f.ev.phase == 'E' && !open[id].empty()) open[id].pop_back();
  }
  for (std::size_t tid = 0; tid < open.size(); ++tid) {
    while (!open[tid].empty()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"name\":\"";
      append_json_escaped(out, open[tid].back());
      std::snprintf(buf, sizeof(buf),
                    "\",\"cat\":\"service\",\"ph\":\"E\",\"ts\":%.3f,"
                    "\"pid\":1,\"tid\":%zu}",
                    static_cast<double>(last_ts) / 1000.0, tid);
      out += buf;
      open[tid].pop_back();
    }
  }
  out += "\n]}\n";
  os << out;
  return static_cast<bool>(os);
}

bool trace_write_chrome_json(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  return trace_write_chrome_json(f);
}

void set_thread_label(const std::string& label) {
  detail::tl.pending_label = label;
  std::lock_guard<std::mutex> lock(detail::session_mutex());
  if (detail::tl.buf != nullptr &&
      detail::tl.epoch == detail::g_epoch.load(std::memory_order_relaxed) &&
      detail::tl.buf->label.empty())
    detail::tl.buf->label = label;
}

}  // namespace gvc::obs
