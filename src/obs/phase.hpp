#pragma once

// obs/phase — per-worker cumulative phase profile: the live Fig. 6
// breakdown. Each service worker owns a padded slot of atomic per-phase
// nanosecond totals; the progress monitor and end-of-run report read them
// concurrently with relaxed loads (monotone counters, same contract as
// obs::Counter).
//
// Where the numbers come from: reduce / branch / steal phases are folded
// out of the solver's existing per-block ActivityAccumulator (the Fig. 6
// instrumentation, CPU-ns summed over all blocks of a launch) once per
// job — the solver hot path is untouched. idle and cache are measured
// directly in the service worker loop as wall time (queue-pop waits and
// result-cache writes). The split therefore mixes block-CPU and worker-
// wall nanoseconds; it is a breakdown, not a wall-clock reconciliation —
// docs/observability.md spells this out.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace gvc::obs {

enum class Phase : int {
  kReduce = 0,  // the three reduction rules
  kBranch,      // max-degree scan, branch application, stack bookkeeping
  kSteal,       // worklist traffic: donations, removals, steals
  kCache,       // result-cache writes on the worker path
  kIdle,        // queue-pop waits + in-launch termination waiting
  kOther,       // solve time with no activity attribution (sequential jobs)
  kCount
};
inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

const char* phase_name(Phase p);

/// Coarse phase each Fig. 6 activity folds into.
Phase phase_of_activity(util::Activity a);

class PhaseTable {
 public:
  explicit PhaseTable(int slots) : slots_(static_cast<std::size_t>(slots)) {}

  int slots() const { return static_cast<int>(slots_.size()); }

  void add(int slot, Phase p, std::uint64_t ns) noexcept {
    slots_[static_cast<std::size_t>(slot)]
        .ns[static_cast<std::size_t>(p)]
        .fetch_add(ns, std::memory_order_relaxed);
  }

  /// Fold a launch's merged activity accumulator into `slot`.
  void add_activities(int slot, const util::ActivityAccumulator& acc) noexcept;

  struct Snapshot {
    std::array<std::uint64_t, kPhaseCount> ns{};
    std::uint64_t total_ns() const;
    double fraction(Phase p) const;
    void merge(const Snapshot& other);
  };

  Snapshot snapshot(int slot) const;
  Snapshot merged() const;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kPhaseCount> ns{};
  };
  std::vector<Slot> slots_;
};

/// One-line split: "reduce 41.2% branch 30.1% steal 3.4% ...". Phases with
/// zero time are elided; an all-zero snapshot renders as "no samples".
std::string format_phase_split(const PhaseTable::Snapshot& snap);

/// Multi-line per-worker table for end-of-run reports.
std::string format_phase_table(const PhaseTable& table);

}  // namespace gvc::obs
