#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace gvc::obs {

namespace detail {

int shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local int index =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(kShards));
  return index;
}

namespace {

// Relaxed CAS-min/max; contention is per-shard so the loop is short.
void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) noexcept {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram() {
  for (auto& s : shards_) s = std::make_unique<Shard>();
}

void Histogram::observe_ns(std::uint64_t ns) noexcept {
  Shard& s = *shards_[static_cast<std::size_t>(detail::shard_index())];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(ns, std::memory_order_relaxed);
  detail::atomic_min(s.min, ns);
  detail::atomic_max(s.max, ns);
  s.buckets[static_cast<std::size_t>(bucket_index(ns))].fetch_add(
      1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  std::uint64_t min = ~std::uint64_t{0};
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum_ns += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    out.max_ns = std::max(out.max_ns, s.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBucketCount; ++b)
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
  }
  out.min_ns = (out.count == 0) ? 0 : min;
  return out;
}

std::uint64_t Histogram::Snapshot::quantile_ns(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample under the same nearest-rank convention
  // util::quantile uses (index q*(n-1), rounded to nearest).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1) + 0.5);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    if (cum > rank)
      return std::clamp(bucket_upper_ns(b), min_ns, max_ns);
  }
  return max_ns;
}

void Histogram::Snapshot::merge(const Snapshot& other) noexcept {
  if (other.count == 0) return;
  min_ns = (count == 0) ? other.min_ns : std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
  count += other.count;
  sum_ns += other.sum_ns;
  for (int b = 0; b < kBucketCount; ++b)
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  // Immortal: components may unregister callbacks from static-destruction
  // contexts, so the registry must never be destroyed before them.
  static Registry* r = new Registry();
  return *r;
}

std::shared_ptr<Counter> Registry::counter(const std::string& name,
                                           const std::string& help) {
  auto c = std::make_shared<Counter>();
  std::lock_guard<std::mutex> lock(mutex_);
  CounterFamily& fam = counters_[name];
  if (fam.help.empty()) fam.help = help;
  std::erase_if(fam.items, [](const auto& w) { return w.expired(); });
  fam.items.push_back(c);
  return c;
}

std::shared_ptr<Histogram> Registry::histogram(const std::string& name,
                                               const std::string& help) {
  auto h = std::make_shared<Histogram>();
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramFamily& fam = histograms_[name];
  if (fam.help.empty()) fam.help = help;
  std::erase_if(fam.items, [](const auto& w) { return w.expired(); });
  fam.items.push_back(h);
  return h;
}

Registry::CallbackHandle Registry::register_callback(
    const std::string& name, const std::string& help, bool cumulative,
    std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  CallbackFamily& fam = callbacks_[name];
  if (fam.help.empty()) fam.help = help;
  fam.cumulative = cumulative;
  const std::uint64_t id = next_callback_id_++;
  fam.items.emplace_back(id, std::move(fn));
  return CallbackHandle(this, name, id);
}

Registry::CallbackHandle Registry::gauge(const std::string& name,
                                         const std::string& help,
                                         std::function<double()> fn) {
  return register_callback(name, help, /*cumulative=*/false, std::move(fn));
}

Registry::CallbackHandle Registry::counter_fn(const std::string& name,
                                              const std::string& help,
                                              std::function<double()> fn) {
  return register_callback(name, help, /*cumulative=*/true, std::move(fn));
}

void Registry::unregister_callback(const std::string& name,
                                   std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = callbacks_.find(name);
  if (it == callbacks_.end()) return;
  std::erase_if(it->second.items,
                [id](const auto& p) { return p.first == id; });
  if (it->second.items.empty()) callbacks_.erase(it);
}

void Registry::CallbackHandle::reset() {
  if (registry_ != nullptr) {
    registry_->unregister_callback(name_, id_);
    registry_ = nullptr;
  }
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    std::uint64_t sum = 0;
    for (const auto& w : it->second.items)
      if (auto c = w.lock()) sum += c->value();
    return sum;
  }
  if (auto it = callbacks_.find(name); it != callbacks_.end()) {
    double sum = 0;
    for (const auto& [id, fn] : it->second.items) sum += fn();
    return sum <= 0 ? 0 : static_cast<std::uint64_t>(sum);
  }
  return 0;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char buf[128];

  for (const auto& [name, fam] : counters_) {
    std::uint64_t sum = 0;
    bool live = false;
    for (const auto& w : fam.items)
      if (auto c = w.lock()) {
        sum += c->value();
        live = true;
      }
    if (!live) continue;
    if (!fam.help.empty()) out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", name.c_str(), sum);
    out += buf;
  }

  for (const auto& [name, fam] : callbacks_) {
    double sum = 0;
    for (const auto& [id, fn] : fam.items) sum += fn();
    if (!fam.help.empty()) out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + (fam.cumulative ? " counter\n" : " gauge\n");
    out += name + " " + detail::format_double(sum) + "\n";
  }

  for (const auto& [name, fam] : histograms_) {
    Histogram::Snapshot snap;
    bool live = false;
    for (const auto& w : fam.items)
      if (auto h = w.lock()) {
        snap.merge(h->snapshot());
        live = true;
      }
    if (!live) continue;
    if (!fam.help.empty()) out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (int b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = snap.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;  // elide empty buckets: 496 lines would be noise
      cum += n;
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                    name.c_str(),
                    detail::format_double(
                        static_cast<double>(Histogram::bucket_upper_ns(b)) /
                        1e9)
                        .c_str(),
                    cum);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  name.c_str(), snap.count);
    out += buf;
    out += name + "_sum " + detail::format_double(snap.sum_seconds()) + "\n";
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", name.c_str(),
                  snap.count);
    out += buf;
  }
  return out;
}

std::string Registry::json_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  char buf[128];
  bool first = true;

  for (const auto& [name, fam] : counters_) {
    std::uint64_t sum = 0;
    bool live = false;
    for (const auto& w : fam.items)
      if (auto c = w.lock()) {
        sum += c->value();
        live = true;
      }
    if (!live) continue;
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %" PRIu64,
                  first ? "" : ",", name.c_str(), sum);
    out += buf;
    first = false;
  }
  for (const auto& [name, fam] : callbacks_) {
    if (!fam.cumulative) continue;
    double sum = 0;
    for (const auto& [id, fn] : fam.items) sum += fn();
    out += std::string(first ? "" : ",") + "\n    \"" + name +
           "\": " + detail::format_double(sum);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";

  first = true;
  for (const auto& [name, fam] : callbacks_) {
    if (fam.cumulative) continue;
    double sum = 0;
    for (const auto& [id, fn] : fam.items) sum += fn();
    out += std::string(first ? "" : ",") + "\n    \"" + name +
           "\": " + detail::format_double(sum);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";

  first = true;
  for (const auto& [name, fam] : histograms_) {
    Histogram::Snapshot snap;
    bool live = false;
    for (const auto& w : fam.items)
      if (auto h = w.lock()) {
        snap.merge(h->snapshot());
        live = true;
      }
    if (!live) continue;
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum_seconds\": ",
        first ? "" : ",", name.c_str(), snap.count);
    out += buf;
    out += detail::format_double(snap.sum_seconds());
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"p50", 0.50},
          {"p90", 0.90},
          {"p99", 0.99},
          {"p999", 0.999}}) {
      out += std::string(", \"") + label +
             "\": " + detail::format_double(snap.quantile_seconds(q));
    }
    out += ", \"max\": " + detail::format_double(snap.max_seconds()) + "}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace gvc::obs
