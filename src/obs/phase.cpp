#include "obs/phase.hpp"

#include <cstdio>

namespace gvc::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kReduce: return "reduce";
    case Phase::kBranch: return "branch";
    case Phase::kSteal: return "steal";
    case Phase::kCache: return "cache";
    case Phase::kIdle: return "idle";
    case Phase::kOther: return "other";
    case Phase::kCount: break;
  }
  return "?";
}

Phase phase_of_activity(util::Activity a) {
  using util::Activity;
  switch (a) {
    case Activity::kDegreeOneRule:
    case Activity::kDegreeTwoTriangleRule:
    case Activity::kHighDegreeRule:
      return Phase::kReduce;
    case Activity::kFindMaxDegree:
    case Activity::kRemoveMaxVertex:
    case Activity::kRemoveNeighbors:
    case Activity::kStackPush:
    case Activity::kStackPop:
      return Phase::kBranch;
    case Activity::kWorklistAdd:
    case Activity::kWorklistRemove:
      return Phase::kSteal;
    case Activity::kTerminate:
      return Phase::kIdle;
    case Activity::kCount:
      break;
  }
  return Phase::kOther;
}

void PhaseTable::add_activities(int slot,
                                const util::ActivityAccumulator& acc) noexcept {
  for (int a = 0; a < util::kNumActivities; ++a) {
    const auto activity = static_cast<util::Activity>(a);
    const std::uint64_t ns = acc.ns(activity);
    if (ns != 0) add(slot, phase_of_activity(activity), ns);
  }
}

PhaseTable::Snapshot PhaseTable::snapshot(int slot) const {
  Snapshot out;
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  for (int p = 0; p < kPhaseCount; ++p)
    out.ns[static_cast<std::size_t>(p)] =
        s.ns[static_cast<std::size_t>(p)].load(std::memory_order_relaxed);
  return out;
}

PhaseTable::Snapshot PhaseTable::merged() const {
  Snapshot out;
  for (int slot = 0; slot < slots(); ++slot) out.merge(snapshot(slot));
  return out;
}

std::uint64_t PhaseTable::Snapshot::total_ns() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : ns) sum += v;
  return sum;
}

double PhaseTable::Snapshot::fraction(Phase p) const {
  const std::uint64_t total = total_ns();
  if (total == 0) return 0.0;
  return static_cast<double>(ns[static_cast<std::size_t>(p)]) /
         static_cast<double>(total);
}

void PhaseTable::Snapshot::merge(const Snapshot& other) {
  for (int p = 0; p < kPhaseCount; ++p)
    ns[static_cast<std::size_t>(p)] += other.ns[static_cast<std::size_t>(p)];
}

std::string format_phase_split(const PhaseTable::Snapshot& snap) {
  if (snap.total_ns() == 0) return "no samples";
  std::string out;
  char buf[64];
  for (int p = 0; p < kPhaseCount; ++p) {
    const auto phase = static_cast<Phase>(p);
    if (snap.ns[static_cast<std::size_t>(p)] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s%s %.1f%%", out.empty() ? "" : "  ",
                  phase_name(phase), 100.0 * snap.fraction(phase));
    out += buf;
  }
  return out;
}

std::string format_phase_table(const PhaseTable& table) {
  std::string out;
  char buf[160];
  for (int slot = 0; slot < table.slots(); ++slot) {
    const PhaseTable::Snapshot snap = table.snapshot(slot);
    if (snap.total_ns() == 0) continue;  // idle-from-birth workers elided
    std::snprintf(buf, sizeof(buf), "  worker %-3d %8.3fs  %s\n", slot,
                  static_cast<double>(snap.total_ns()) / 1e9,
                  format_phase_split(snap).c_str());
    out += buf;
  }
  return out;
}

}  // namespace gvc::obs
