#pragma once

// obs/trace — lock-free event tracing with Chrome trace-event JSON export.
//
// The contract that shapes everything here:
//
//   * DISABLED is the normal state and must cost one relaxed atomic load
//     plus a predictable branch per hook — hooks sit inside the per-node
//     solver loop (reduce fixpoint, branch, undo), so anything heavier
//     would show up in solve throughput. bench/micro_obs_overhead proves
//     the budget. Building with -DGVC_OBS_DISABLED compiles every hook
//     down to nothing (the "build without obs" baseline).
//
//   * ENABLED must be TSan-clean. Each thread records into its own
//     fixed-capacity buffer (registered on first event, reused across
//     thread exits) and publishes its write position with a release store;
//     the exporter reads positions with acquire and only touches the
//     published prefix. Buffers never wrap: when full, NEW events are
//     dropped (drop-newest) — wrapping would race writer overwrites
//     against the exporter and break span pairing.
//
//   * Spans must stay balanced. A 'B' (begin) is only recorded when the
//     buffer can also guarantee a slot for its 'E' (end): every open span
//     reserves one slot, so an E never drops after its B was recorded.
//     Unmatched trailing B's (spans still open at export) are closed with
//     synthetic E's by the exporter. tools/trace_check validates all of
//     this on the emitted file.
//
// Sampling: the per-node hooks use the *_sampled variants, which record
// 1-in-N per thread (N = TraceOptions::sample_every); the coarse hooks
// (job lifecycle, adoption, steals, cache) record every hit.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace gvc::obs {

/// Event category, mapped to the Chrome "cat" field (filterable in
/// Perfetto).
enum class TraceCat : std::uint8_t {
  kService,  // job lifecycle: submit/dequeue/solve/terminal
  kSolve,    // one parallel::solve() call
  kReduce,   // reduce-fixpoint passes (sampled)
  kBranch,   // branch / undo / prune (sampled)
  kWork,     // adoption, steals, donations, spills
  kCache,    // result-cache hits/misses/stores
  kNet,      // serving daemon: connections, frames, request handling
};
const char* trace_cat_name(TraceCat c);

struct TraceOptions {
  /// Events retained per thread buffer (drop-newest past this).
  std::size_t capacity_per_thread = std::size_t{1} << 15;
  /// The *_sampled hooks record one event per `sample_every` hits (per
  /// thread). 1 = record everything.
  std::uint32_t sample_every = 64;
  /// Hard cap on distinct concurrent buffers; threads beyond it trace
  /// nothing. Buffers of exited threads are reused.
  std::size_t max_threads = 512;
};

/// Start a recording session. Returns false if one is already active.
/// Restarting retires the previous session's buffers (kept alive so
/// stragglers mid-hook never touch freed memory).
bool trace_start(const TraceOptions& opts = {});

/// Stop recording. Returns false if no session was active. The captured
/// events stay available for export.
bool trace_stop();

struct TraceSummary {
  std::size_t threads = 0;  // buffers registered this session
  std::size_t events = 0;   // events recorded
  std::uint64_t dropped = 0;
};
TraceSummary trace_summary();

/// Write the captured session as Chrome trace-event JSON ("traceEvents"
/// array, ts in microseconds, sorted). Safe while recording (exports the
/// published prefix). Returns false if no session was ever started, or on
/// I/O failure for the path overload.
bool trace_write_chrome_json(std::ostream& os);
bool trace_write_chrome_json(const std::string& path);

/// Label the calling thread in exported traces (Perfetto thread_name).
/// Sticky: applies to the buffer the thread registers, current or future.
void set_thread_label(const std::string& label);

namespace detail {

#ifndef GVC_OBS_DISABLED
extern std::atomic<bool> g_trace_on;
#endif

std::uint64_t current_epoch() noexcept;
void instant_slow(TraceCat cat, const char* name, const char* arg_name,
                  std::int64_t arg);
bool begin_slow(TraceCat cat, const char* name, const char* arg_name,
                std::int64_t arg);
void end_slow(const char* name, std::uint64_t epoch);
bool sample_slow() noexcept;

}  // namespace detail

/// The one-relaxed-load disabled check every hook starts with.
inline bool tracing() noexcept {
#ifdef GVC_OBS_DISABLED
  return false;
#else
  return detail::g_trace_on.load(std::memory_order_relaxed);
#endif
}

/// Point event. `name` / `arg_name` must be string literals (or otherwise
/// outlive the session): only the pointer is recorded.
inline void trace_instant(TraceCat cat, const char* name,
                          const char* arg_name = nullptr,
                          std::int64_t arg = 0) {
  if (!tracing()) return;
  detail::instant_slow(cat, name, arg_name, arg);
}

/// Sampled point event for per-node hot paths (1-in-sample_every).
inline void trace_instant_sampled(TraceCat cat, const char* name,
                                  const char* arg_name = nullptr,
                                  std::int64_t arg = 0) {
  if (!tracing()) return;
  if (!detail::sample_slow()) return;
  detail::instant_slow(cat, name, arg_name, arg);
}

/// RAII B/E span. The destructor records the E iff the B was recorded and
/// the session epoch is unchanged (so a stop/start between B and E never
/// writes an orphan E into a fresh session).
class TraceSpan {
 public:
  explicit TraceSpan(TraceCat cat, const char* name,
                     const char* arg_name = nullptr, std::int64_t arg = 0) {
    if (!tracing()) return;
    open(cat, name, arg_name, arg);
  }
  ~TraceSpan() {
    if (recorded_) detail::end_slow(name_, epoch_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool recorded() const noexcept { return recorded_; }

 protected:
  TraceSpan() = default;
  void open(TraceCat cat, const char* name, const char* arg_name,
            std::int64_t arg) {
    epoch_ = detail::current_epoch();
    recorded_ = detail::begin_slow(cat, name, arg_name, arg);
    name_ = name;
  }

 private:
  bool recorded_ = false;
  const char* name_ = nullptr;
  std::uint64_t epoch_ = 0;
};

/// Span variant for per-node hot paths: records 1-in-sample_every spans.
class TraceSpanSampled : public TraceSpan {
 public:
  explicit TraceSpanSampled(TraceCat cat, const char* name,
                            const char* arg_name = nullptr,
                            std::int64_t arg = 0) {
    if (!tracing()) return;
    if (!detail::sample_slow()) return;
    open(cat, name, arg_name, arg);
  }
};

}  // namespace gvc::obs
