#include "worklist/local_stack.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace gvc::worklist {

LocalStack::LocalStack(graph::Vertex num_vertices, int capacity)
    : num_vertices_(num_vertices) {
  GVC_CHECK(capacity >= 0);
  entries_.resize(static_cast<std::size_t>(capacity));
}

void LocalStack::push(const vc::DegreeArray& node) {
  GVC_CHECK_MSG(top_ < capacity(), "local stack overflow (depth bound violated)");
  GVC_CHECK_MSG(node.num_vertices() == num_vertices_,
                "degree array size mismatch");
  entries_[static_cast<std::size_t>(top_)] = node;
  ++top_;
  high_water_ = std::max(high_water_, top_);
}

bool LocalStack::try_pop(vc::DegreeArray& out) {
  if (top_ == 0) return false;
  --top_;
  // Copy (not move) so the slot keeps its pre-allocated buffer — mirroring
  // the GPU discipline of fixed stack storage with memcpy in/out.
  out = entries_[static_cast<std::size_t>(top_)];
  return true;
}

std::int64_t LocalStack::footprint_bytes() const {
  // Each pre-allocated slot stores one degree array entry: |V| 32-bit
  // degrees plus the two maintained counters.
  return static_cast<std::int64_t>(capacity()) *
         (static_cast<std::int64_t>(num_vertices_) * 4 + 16);
}

}  // namespace gvc::worklist
