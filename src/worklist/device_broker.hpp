#pragma once

// DeviceBroker — the cross-DEVICE tier of work-conserving stealing, one
// level above the per-block structures in this directory. The GlobalWorklist
// balances blocks within one launch and the StealDeques balance blocks
// within one grid; the broker balances whole devices within one service:
// when every worker of a device is hungry (its shard queues are dry and its
// siblings have nothing to steal), running solves on OTHER devices divert
// the occasional branch child here instead of keeping it local, and the
// hungry device's workers adopt it exactly as a donated node — the PR 4
// donation-snapshot rule (a node leaving its block is a detached,
// self-contained DegreeArray copy) already made migration serializable, so
// crossing a device boundary is the same contract one level up.
//
// Roles:
//
//  * A running solve (Hybrid / WorkStealing) holds a GROUP — the per-solve
//    registration. At a branch it consults want_export() (two relaxed loads;
//    nothing is paid when no remote device is hungry) and, when demand
//    exists, exports the materialized neighbors child instead of donating it
//    locally. After its launch completes the owner calls drain(): entries
//    nobody imported are taken back (and run inline, or abandoned when the
//    solve already stopped), then the owner blocks until every imported node
//    has finished running remotely — the group's SharedSearch outlives every
//    migrated node, and every exported node is executed-or-abandoned exactly
//    once.
//
//  * An idle service worker on a starved device calls enter_hungry() /
//    leave_hungry() around its bounded queue wait (that registration IS the
//    demand signal) and try_import()s nodes exported by OTHER devices. The
//    returned Import handle runs the node through the owning group's runner
//    — which re-enters it with the same adopt_node() path a donated node
//    takes — and guarantees exactly-once completion even if the handle is
//    dropped without running.
//
// Demand gating keeps migration conservative: an export is admitted only
// while the count of hungry workers on OTHER devices exceeds the number of
// nodes already queued, so the broker never hoards subtrees a local block
// could have kept (§IV-C's donation-threshold idea, applied across devices).
//
// Lock order: broker mutex → group mutex. Stats are exact at quiescence
// (after drain), the same contract as every stats struct in this layer.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "vc/degree_array.hpp"
#include "vc/reductions.hpp"

namespace gvc::worklist {

class DeviceBroker {
 public:
  /// Every exported node ends in exactly one bucket: runs (imported and
  /// executed remotely), reclaims (drained back by the owner and run
  /// inline), or abandons (dropped because the solve already stopped, or an
  /// Import handle died unrun). At quiescence:
  ///   exports == runs + reclaims + abandons,  imports == runs + <unrun
  ///   imports, counted in abandons>.
  struct Stats {
    std::uint64_t exports = 0;
    std::uint64_t imports = 0;
    std::uint64_t runs = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t abandons = 0;
    std::uint64_t rejected_no_demand = 0;  ///< confirm-time demand recheck
    std::uint64_t rejected_full = 0;       ///< bounded queue was full
  };

  class Group;

  /// A migrated node in the hands of an importing worker. Move-only;
  /// run() executes it through the owner group's runner exactly once.
  /// Dropping an un-run handle completes the node as abandoned — the
  /// owner's drain() never deadlocks on a worker that bailed out.
  class Import {
   public:
    Import() = default;
    Import(Import&& o) noexcept { *this = std::move(o); }
    Import& operator=(Import&& o) noexcept;
    ~Import() { release_unrun(); }
    Import(const Import&) = delete;
    Import& operator=(const Import&) = delete;

    explicit operator bool() const { return group_ != nullptr; }
    /// Device the node's owning solve runs on (the exporter side).
    int source_device() const;

    /// Executes the node against the owning solve's shared search, using
    /// the CALLING worker's reduce scratch. Exactly once per handle.
    void run(vc::ReduceWorkspace& ws);

   private:
    friend class DeviceBroker;
    Group* group_ = nullptr;
    vc::DegreeArray node_;
    void release_unrun();
  };

  /// Per-solve registration of an exporting owner. The runner is how a
  /// migrated node re-enters execution — both remotely (Import::run) and
  /// on the owner's own thread (drain's reclaim path); it must be callable
  /// from any thread and each call gets the calling thread's workspace.
  class Group {
   public:
    using Runner = std::function<void(vc::DegreeArray&&, vc::ReduceWorkspace&)>;

    Group(DeviceBroker& broker, int device, Runner runner);
    /// Safety net: sweeps + waits like drain(abandon=true). Idempotent
    /// after drain().
    ~Group();
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    int device() const { return device_; }

    /// Cheap pre-gate for the solver branch hot path: true while hungry
    /// workers on OTHER devices outnumber the nodes already queued. Two
    /// relaxed loads; may be stale in either direction (try_export
    /// re-checks under the lock).
    bool want_export() const { return broker_->want_export(device_); }

    /// Hands one detached snapshot to the broker. False when demand
    /// vanished or the queue is full — the caller keeps the node local,
    /// exactly as a refused worklist donation is kept.
    bool try_export(vc::DegreeArray&& node);

    /// Owner-side settlement, called after the launch completes and BEFORE
    /// the shared search is harvested: takes back every entry still queued
    /// (runs each through the runner with `ws`, or counts it abandoned when
    /// `abandon` — the solve was stopped and the subtree is moot), then
    /// blocks until every imported node has completed remotely.
    void drain(vc::ReduceWorkspace& ws, bool abandon);

    /// Nodes this group exported (relaxed; exact after drain()).
    std::uint64_t exported() const {
      return exported_.load(std::memory_order_relaxed);
    }

   private:
    friend class DeviceBroker;
    friend class Import;

    void begin_import();  ///< under the broker mutex
    void complete_one();

    DeviceBroker* broker_;
    const int device_;
    Runner runner_;
    std::atomic<std::uint64_t> exported_{0};

    std::mutex mutex_;
    std::condition_variable cv_;
    int inflight_ = 0;  ///< imported, not yet completed
  };

  /// `num_devices` sizes the per-device hungry counters; `capacity` bounds
  /// the migration queue (small on purpose — the broker is a relief valve,
  /// not a worklist).
  explicit DeviceBroker(int num_devices, std::size_t capacity = 64);
  ~DeviceBroker();
  DeviceBroker(const DeviceBroker&) = delete;
  DeviceBroker& operator=(const DeviceBroker&) = delete;

  int num_devices() const { return static_cast<int>(hungry_.size()); }
  std::size_t capacity() const { return capacity_; }

  /// Demand registration for an idle worker of `device`. Balanced calls;
  /// a worker registers around each bounded wait on its dry shard.
  void enter_hungry(int device);
  void leave_hungry(int device);

  /// Takes the oldest queued node exported by a DIFFERENT device. False
  /// when nothing eligible is queued.
  bool try_import(int device, Import& out);

  std::size_t size() const;
  Stats stats() const;

 private:
  struct Entry {
    Group* group = nullptr;
    vc::DegreeArray node;
    double export_s = 0.0;
  };

  bool want_export(int device) const {
    const int elsewhere =
        hungry_total_.load(std::memory_order_relaxed) -
        hungry_[static_cast<std::size_t>(device)].load(
            std::memory_order_relaxed);
    return elsewhere > queued_approx_.load(std::memory_order_relaxed);
  }

  bool export_node(Group* g, vc::DegreeArray&& node);
  /// Removes every queued entry of `g`; returns their nodes.
  std::vector<vc::DegreeArray> sweep(Group* g);
  void count_run();
  void count_reclaims(std::uint64_t n);
  void count_abandons(std::uint64_t n);

  const std::size_t capacity_;
  util::WallTimer clock_;

  std::vector<std::atomic<int>> hungry_;
  std::atomic<int> hungry_total_{0};
  std::atomic<int> queued_approx_{0};

  mutable std::mutex mutex_;
  std::deque<Entry> queue_;
  Stats stats_;

  // Registry exposure (gvc_steal_nodes_*): per-instance collectors, family
  // sums at scrape — same pattern as JobQueue. Declared last so the
  // callbacks unregister before the guarded state dies.
  std::shared_ptr<obs::Histogram> wait_hist_;
  std::vector<obs::Registry::CallbackHandle> metric_handles_;
};

}  // namespace gvc::worklist
