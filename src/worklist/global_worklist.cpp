#include "worklist/global_worklist.hpp"

#include <chrono>

#include "util/check.hpp"

namespace gvc::worklist {

GlobalWorklist::GlobalWorklist(std::size_t capacity, std::size_t threshold,
                               int num_blocks)
    : queue_(capacity), threshold_(threshold), num_blocks_(num_blocks) {
  GVC_CHECK(num_blocks > 0);
  GVC_CHECK_MSG(threshold <= queue_.capacity(),
                "threshold exceeds worklist capacity");
}

void GlobalWorklist::add(vc::DegreeArray node) {
  GVC_CHECK_MSG(queue_.try_push(std::move(node)), "worklist full while seeding");
  adds_.fetch_add(1, std::memory_order_relaxed);
  wait_cv_.notify_one();
}

bool GlobalWorklist::try_donate(vc::DegreeArray&& node) {
  if (queue_.size_approx() >= threshold_) {
    rejected_threshold_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!queue_.try_push(std::move(node))) {
    rejected_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  adds_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t sz = queue_.size_approx();
  std::uint64_t prev = max_size_.load(std::memory_order_relaxed);
  while (sz > prev &&
         !max_size_.compare_exchange_weak(prev, sz, std::memory_order_relaxed)) {
  }
  // Wake one sleeper; it will either take this entry or re-sleep.
  wait_cv_.notify_one();
  return true;
}

GlobalWorklist::RemoveOutcome GlobalWorklist::remove(vc::DegreeArray& out) {
  for (;;) {
    if (stop_.load(std::memory_order_acquire) ||
        done_.load(std::memory_order_acquire))
      return RemoveOutcome::kDone;

    if (queue_.try_pop(out)) {
      removes_.fetch_add(1, std::memory_order_relaxed);
      return RemoveOutcome::kGot;
    }

    // Failed removal: register as waiting. If every block in the grid is
    // now waiting, no block is processing a node, so no new work can ever
    // be produced; one exact re-check of the queue decides termination.
    // (Blocks only push while processing, i.e. outside remove(), so
    // waiting == num_blocks implies there are no in-flight pushes, and the
    // acq_rel chain through waiting_ makes completed pushes visible.)
    int now_waiting = waiting_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now_waiting == num_blocks_) {
      if (queue_.try_pop(out)) {
        waiting_.fetch_sub(1, std::memory_order_acq_rel);
        removes_.fetch_add(1, std::memory_order_relaxed);
        return RemoveOutcome::kGot;
      }
      done_.store(true, std::memory_order_release);
      waiting_.fetch_sub(1, std::memory_order_acq_rel);
      wait_cv_.notify_all();
      return RemoveOutcome::kDone;
    }
    {
      // Sleep briefly, then retry (the paper's nanosleep backoff). The
      // timeout guards against a lost notify between the failed pop and
      // the wait.
      std::unique_lock<std::mutex> lock(wait_mutex_);
      wait_cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
        return !queue_.empty_approx() ||
               stop_.load(std::memory_order_acquire) ||
               done_.load(std::memory_order_acquire);
      });
    }
    waiting_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void GlobalWorklist::signal_stop() {
  stop_.store(true, std::memory_order_release);
  wait_cv_.notify_all();
}

WorklistStats GlobalWorklist::stats() const {
  WorklistStats s;
  s.adds = adds_.load();
  s.removes = removes_.load();
  s.donations_rejected_threshold = rejected_threshold_.load();
  s.donations_rejected_full = rejected_full_.load();
  s.max_size_seen = max_size_.load();
  return s;
}

}  // namespace gvc::worklist
