#pragma once

// Per-block local stack (§III-C / §IV-E).
//
// On the GPU this is a pre-allocated region of global memory sized for the
// maximum possible tree depth (the greedy upper bound for MVC, k for PVC),
// because dynamic allocation inside a kernel is prohibitively expensive and
// because the sum of all stacks must fit global memory. We reproduce that
// discipline: all entries are allocated up front at construction, pushes
// copy into pre-sized slots (no allocation on the hot path once warmed),
// and overflow is a hard error rather than a reallocation.

#include <cstdint>
#include <vector>

#include "vc/degree_array.hpp"

namespace gvc::worklist {

class LocalStack {
 public:
  /// num_vertices sizes each entry; capacity is the depth bound.
  LocalStack(graph::Vertex num_vertices, int capacity);

  bool empty() const { return top_ == 0; }
  int size() const { return top_; }
  int capacity() const { return static_cast<int>(entries_.size()); }

  /// Deepest the stack has ever been; reported by the memory benches.
  int high_water() const { return high_water_; }

  /// Copies `node` into the next slot. Aborts on overflow — the depth bound
  /// argument of §IV-E guarantees this cannot happen for correct callers.
  void push(const vc::DegreeArray& node);

  /// Moves the top into `out`; returns false when empty.
  bool try_pop(vc::DegreeArray& out);

  /// Bytes of entry storage held (the quantity the occupancy calculator
  /// budgets against global memory).
  std::int64_t footprint_bytes() const;

 private:
  std::vector<vc::DegreeArray> entries_;
  int top_ = 0;
  int high_water_ = 0;
  graph::Vertex num_vertices_;
};

}  // namespace gvc::worklist
