#include "worklist/device_broker.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace gvc::worklist {

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

DeviceBroker::Import& DeviceBroker::Import::operator=(Import&& o) noexcept {
  if (this != &o) {
    release_unrun();
    group_ = o.group_;
    node_ = std::move(o.node_);
    o.group_ = nullptr;
  }
  return *this;
}

int DeviceBroker::Import::source_device() const {
  GVC_CHECK(group_ != nullptr);
  return group_->device();
}

void DeviceBroker::Import::run(vc::ReduceWorkspace& ws) {
  GVC_CHECK_MSG(group_ != nullptr, "Import::run() on an empty handle");
  Group* g = group_;
  group_ = nullptr;  // consumed before running: exactly-once
  try {
    g->runner_(std::move(node_), ws);
  } catch (...) {
    // A throwing runner must still settle the node, or the owner's drain()
    // waits forever and the ledger loses a bucket (exports != runs +
    // reclaims + abandons). The subtree went unexplored: it is abandoned.
    g->broker_->count_abandons(1);
    g->complete_one();
    throw;
  }
  g->broker_->count_run();
  g->complete_one();
}

void DeviceBroker::Import::release_unrun() {
  if (group_ == nullptr) return;
  Group* g = group_;
  group_ = nullptr;
  g->broker_->count_abandons(1);
  g->complete_one();
}

// ---------------------------------------------------------------------------
// Group
// ---------------------------------------------------------------------------

DeviceBroker::Group::Group(DeviceBroker& broker, int device, Runner runner)
    : broker_(&broker), device_(device), runner_(std::move(runner)) {
  GVC_CHECK(device >= 0 && device < broker.num_devices());
  GVC_CHECK(runner_ != nullptr);
}

DeviceBroker::Group::~Group() {
  // Abandoning settlement for owners that never drained (an exception
  // path): nothing may reference this group once it dies.
  std::vector<vc::DegreeArray> mine = broker_->sweep(this);
  if (!mine.empty()) broker_->count_abandons(mine.size());
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return inflight_ == 0; });
}

bool DeviceBroker::Group::try_export(vc::DegreeArray&& node) {
  return broker_->export_node(this, std::move(node));
}

void DeviceBroker::Group::drain(vc::ReduceWorkspace& ws, bool abandon) {
  std::vector<vc::DegreeArray> mine = broker_->sweep(this);
  if (abandon) {
    broker_->count_abandons(mine.size());
  } else {
    // Un-imported subtrees are unexplored work: for a clean MVC completion
    // they MUST run or the reported optimum could miss their covers. They
    // run inline on the owner's thread, through the same runner an import
    // uses.
    for (auto& n : mine) runner_(std::move(n), ws);
    broker_->count_reclaims(mine.size());
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return inflight_ == 0; });
}

void DeviceBroker::Group::begin_import() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++inflight_;
}

void DeviceBroker::Group::complete_one() {
  // The notify must happen UNDER the mutex: the owner waiting in drain() /
  // ~Group may destroy this Group the instant the predicate holds, and a
  // second completer that already decremented could otherwise reach its
  // notify_all after the condition_variable is gone. Holding the lock
  // pins the waiter inside cv_.wait() until the notify has completed.
  std::lock_guard<std::mutex> lock(mutex_);
  GVC_CHECK(inflight_ > 0);
  --inflight_;
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// DeviceBroker
// ---------------------------------------------------------------------------

DeviceBroker::DeviceBroker(int num_devices, std::size_t capacity)
    : capacity_(capacity),
      hungry_(static_cast<std::size_t>(std::max(1, num_devices))) {
  GVC_CHECK_MSG(capacity_ > 0, "DeviceBroker capacity must be positive");

  obs::Registry& reg = obs::Registry::global();
  auto counter = [&](const char* name, const char* help,
                     std::uint64_t Stats::* field) {
    metric_handles_.push_back(reg.counter_fn(name, help, [this, field] {
      std::lock_guard<std::mutex> lock(mutex_);
      return static_cast<double>(stats_.*field);
    }));
  };
  counter("gvc_steal_nodes_exported_total",
          "subtree nodes diverted to the cross-device broker",
          &Stats::exports);
  counter("gvc_steal_nodes_imported_total",
          "migrated nodes taken by a starved device", &Stats::imports);
  counter("gvc_steal_nodes_reclaimed_total",
          "un-imported nodes drained back and run by their owner",
          &Stats::reclaims);
  counter("gvc_steal_nodes_abandoned_total",
          "migrated nodes dropped because their solve already stopped",
          &Stats::abandons);
  metric_handles_.push_back(
      reg.gauge("gvc_steal_broker_depth", "migrated nodes currently queued",
                [this] {
                  std::lock_guard<std::mutex> lock(mutex_);
                  return static_cast<double>(queue_.size());
                }));
  wait_hist_ = reg.histogram("gvc_steal_migration_wait_seconds",
                             "export -> import queue residence of a "
                             "migrated node");
}

DeviceBroker::~DeviceBroker() {
  // Every Group must be gone (each waits out its own entries/imports).
  std::lock_guard<std::mutex> lock(mutex_);
  GVC_CHECK_MSG(queue_.empty(), "DeviceBroker died with queued migrations");
}

void DeviceBroker::enter_hungry(int device) {
  hungry_[static_cast<std::size_t>(device)].fetch_add(
      1, std::memory_order_relaxed);
  hungry_total_.fetch_add(1, std::memory_order_relaxed);
}

void DeviceBroker::leave_hungry(int device) {
  hungry_[static_cast<std::size_t>(device)].fetch_sub(
      1, std::memory_order_relaxed);
  hungry_total_.fetch_sub(1, std::memory_order_relaxed);
}

bool DeviceBroker::export_node(Group* g, vc::DegreeArray&& node) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.size() >= capacity_) {
    ++stats_.rejected_full;
    return false;
  }
  // Confirm demand under the lock: the pre-gate's relaxed reads may have
  // raced a worker leaving hungry or a competing export.
  const int elsewhere =
      hungry_total_.load(std::memory_order_relaxed) -
      hungry_[static_cast<std::size_t>(g->device_)].load(
          std::memory_order_relaxed);
  if (elsewhere <= static_cast<int>(queue_.size())) {
    ++stats_.rejected_no_demand;
    return false;
  }
  queue_.push_back(Entry{g, std::move(node), clock_.seconds()});
  queued_approx_.store(static_cast<int>(queue_.size()),
                       std::memory_order_relaxed);
  ++stats_.exports;
  g->exported_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DeviceBroker::try_import(int device, Import& out) {
  // Settle any node the caller still holds BEFORE taking the broker lock:
  // releasing a live handle counts an abandon, which locks this same
  // (non-recursive) mutex.
  out.release_unrun();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->group->device_ == device) continue;  // cross-device only
    // inflight is raised while the entry leaves the queue (both under the
    // broker mutex), so the owner's drain() sweep either finds the entry
    // or waits for this import — never neither.
    it->group->begin_import();
    out.group_ = it->group;
    out.node_ = std::move(it->node);
    wait_hist_->observe_seconds(clock_.seconds() - it->export_s);
    queue_.erase(it);
    queued_approx_.store(static_cast<int>(queue_.size()),
                         std::memory_order_relaxed);
    ++stats_.imports;
    return true;
  }
  return false;
}

std::vector<vc::DegreeArray> DeviceBroker::sweep(Group* g) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<vc::DegreeArray> mine;
  auto keep = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->group == g) {
      mine.push_back(std::move(it->node));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  queue_.erase(keep, queue_.end());
  queued_approx_.store(static_cast<int>(queue_.size()),
                       std::memory_order_relaxed);
  return mine;
}

void DeviceBroker::count_run() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.runs;
}

void DeviceBroker::count_reclaims(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.reclaims += n;
}

void DeviceBroker::count_abandons(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.abandons += n;
}

std::size_t DeviceBroker::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

DeviceBroker::Stats DeviceBroker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gvc::worklist
