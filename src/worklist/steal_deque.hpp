#pragma once

// Per-block work-stealing deque, the substrate of the WorkStealing study
// baseline (see parallel/work_stealing.hpp). The owner block treats it as a
// stack — push/pop at the bottom, preserving the depth-first order Fig. 4
// relies on — while idle blocks steal from the top, where the shallowest
// (and therefore statistically largest) sub-trees sit. That is the classic
// steal-the-oldest policy of work-stealing schedulers.
//
// The implementation is a pre-allocated ring buffer guarded by a mutex.
// A production GPU port would use a lock-free Chase–Lev deque in global
// memory; the mutex keeps this host model obviously correct, and the benches
// measure its contention the same way they measure the broker queue's
// (cycles inside the locked sections are charged to the stealing/pushing
// block's activity accumulator).
//
// Like LocalStack, storage is allocated once at construction: the owner can
// hold at most one node per tree level, so `capacity` = the depth bound of
// §IV-E, and steals only ever shrink the deque. Overflow is a hard error.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "vc/degree_array.hpp"

namespace gvc::worklist {

class StealDeque {
 public:
  /// num_vertices sizes each entry; capacity is the depth bound.
  StealDeque(graph::Vertex num_vertices, int capacity);

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  int capacity() const { return static_cast<int>(entries_.size()); }

  /// Entries currently held. Exact but immediately stale under concurrency;
  /// used by thieves to skip obviously empty victims cheaply.
  int size_approx() const { return size_.load(std::memory_order_relaxed); }
  bool empty_approx() const { return size_approx() == 0; }

  /// Owner: push a node at the bottom (deepest end). Aborts on overflow —
  /// the §IV-E depth bound guarantees correct callers never overflow. The
  /// rvalue overload moves into the slot; the trail engines use it so an
  /// advertisement costs one array copy, not two.
  void push_bottom(const vc::DegreeArray& node);
  void push_bottom(vc::DegreeArray&& node);

  /// Owner: pop the most recently pushed node (depth-first order).
  bool try_pop_bottom(vc::DegreeArray& out);

  /// Thief: steal the oldest (shallowest) node from the top.
  bool try_steal_top(vc::DegreeArray& out);

  /// Deepest the deque has ever been.
  int high_water() const { return high_water_; }

  /// Lifetime counters (read when quiescent).
  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t pops() const { return pops_; }
  std::uint64_t steals_suffered() const { return steals_; }

  /// Bytes of entry storage held (for the memory budget, like LocalStack).
  std::int64_t footprint_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::vector<vc::DegreeArray> entries_;
  // Ring indices: top_ chases bottom_; entries live in [top_, bottom_).
  std::size_t top_ = 0;
  std::size_t bottom_ = 0;
  std::atomic<int> size_{0};

  int high_water_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t steals_ = 0;

  graph::Vertex num_vertices_;
};

}  // namespace gvc::worklist
