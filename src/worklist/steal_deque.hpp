#pragma once

// Per-block work-stealing deque, the substrate of the WorkStealing study
// baseline (see parallel/work_stealing.hpp). The owner block treats it as a
// stack — push/pop at the bottom, preserving the depth-first order Fig. 4
// relies on — while idle blocks steal from the top, where the shallowest
// (and therefore statistically largest) sub-trees sit. That is the classic
// steal-the-oldest policy of work-stealing schedulers.
//
// The implementation is a lock-free Chase–Lev deque (Chase & Lev, SPAA 2005)
// in the C11/C++11 memory-ordering formulation of Lê, Pop, Cohen & Zappa
// Nardelli (PPoPP 2013): `top_` and `bottom_` are atomic counters over a
// circular array, the owner's push_bottom/try_pop_bottom are wait-free
// (plain loads/stores plus one fence), and a compare-and-swap on `top_` is
// paid only by thieves — and by the owner in the one-element case, where
// both ends race for the same entry. This mirrors the per-block deques in
// global memory a GPU port would use (§IV-A's discussion of work stealing).
//
// Payload indirection: a search-tree node is an O(|V|) DegreeArray, far too
// big to copy inside the steal race (a thief must read the entry BEFORE its
// CAS, while the owner may still be writing a later generation of the same
// ring slot). The ring therefore holds 32-bit indices into a pre-allocated
// DegreeArray pool: the owner moves the payload into a free pool slot, then
// publishes the index; ownership of the slot transfers atomically with the
// CAS (or the owner's fenced bottom decrement), and only the unique consumer
// touches the payload. Slot recycling is two-tier so the owner path stays
// free of atomic read-modify-writes: the owner recycles through a private
// stack, thieves release through a shared Treiber stack, and the owner
// batch-claims the whole shared list with one exchange only when its
// private stack runs dry. The shared stack is multi-producer /
// single-consumer (only the owner claims), which makes the claim ABA-free.
//
// Like LocalStack, storage is allocated once at construction: the owner can
// hold at most one node per tree level, so `capacity` = the depth bound of
// §IV-E, and steals only ever shrink the deque. Overflow is a hard error.
// The pool carries `steal_headroom` extra slots beyond `capacity` for
// entries a consumer has claimed but not yet moved out: pass the number of
// threads that may touch the deque concurrently (the WorkStealing solver
// passes its grid size); undersizing it aborts rather than corrupts.
//
// Lifetime counters (pushes/pops/steals_suffered/high_water) are relaxed
// atomics, safely readable from any thread at any time — mid-run stats
// reporting sees monotone, possibly slightly stale values. high_water() is
// exact when quiescent but may transiently overcount under concurrent
// steals (the owner sizes against a stale `top_`).

#include <atomic>
#include <cstdint>
#include <vector>

#include "vc/degree_array.hpp"

namespace gvc::worklist {

class StealDeque {
 public:
  /// num_vertices sizes each pool entry; capacity is the depth bound;
  /// steal_headroom bounds the number of concurrent consumers (see the
  /// header comment — the default covers the test rigs and small grids).
  StealDeque(graph::Vertex num_vertices, int capacity, int steal_headroom = 8);

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  int capacity() const { return capacity_; }

  /// Entries currently held. Immediately stale under concurrency (and may
  /// transiently overcount while an owner pop is in flight); used by
  /// thieves to skip obviously empty victims cheaply and by the owner's
  /// lazy-advertisement gate.
  int size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<int>(b - t) : 0;
  }
  bool empty_approx() const { return size_approx() == 0; }

  /// Owner: push a node at the bottom (deepest end). Wait-free. Aborts on
  /// overflow — the §IV-E depth bound guarantees correct callers never
  /// overflow. The rvalue overload moves into the pool slot; the trail
  /// engines use it so an advertisement costs one array copy, not two.
  void push_bottom(const vc::DegreeArray& node);
  void push_bottom(vc::DegreeArray&& node);

  /// Owner: pop the most recently pushed node (depth-first order).
  /// Wait-free; pays one CAS only when racing thieves for the last entry.
  bool try_pop_bottom(vc::DegreeArray& out);

  /// Thief: steal the oldest (shallowest) node from the top. Lock-free; one
  /// CAS on `top_` claims the entry, losing a race returns false.
  bool try_steal_top(vc::DegreeArray& out);

  /// Deepest the deque has ever been (see the header note on transient
  /// overcounting under concurrent steals).
  int high_water() const { return high_water_.load(std::memory_order_relaxed); }

  /// Lifetime counters; relaxed atomics, safely readable anytime.
  std::uint64_t pushes() const {
    return pushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t pops() const { return pops_.load(std::memory_order_relaxed); }
  std::uint64_t steals_suffered() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Bytes of pool storage held (for the memory budget, like LocalStack):
  /// (capacity + steal_headroom) slots of one degree entry per vertex.
  std::int64_t footprint_bytes() const;

 private:
  /// Owner: take a free pool slot — private stack first, one exchange to
  /// batch-claim the thief-released list when it runs dry.
  std::int32_t acquire_slot();
  /// Thief: return a drained slot through the shared Treiber stack.
  void release_slot_shared(std::int32_t slot);
  /// Shared body of the two push overloads, after the payload is in place.
  void publish_bottom(std::int64_t b, std::int32_t slot);

  template <typename Node>
  void push_bottom_impl(Node&& node);

  int capacity_ = 0;
  std::size_t mask_ = 0;  ///< ring size (power of two ≥ capacity) minus 1

  // Chase–Lev indices: entries live in [top_, bottom_). Monotone except for
  // the owner's speculative bottom decrement in try_pop_bottom; signed so
  // the transient bottom_ == top_ - 1 state is representable.
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};

  /// Ring of pool indices; a slot value is only meaningful for live entries.
  std::vector<std::atomic<std::int32_t>> ring_;

  /// Pre-allocated payload pool. local_free_ is the owner's private slot
  /// stack (never touched by thieves); shared_free_/free_next_ form the
  /// Treiber stack thieves release into.
  std::vector<vc::DegreeArray> pool_;
  std::vector<std::int32_t> local_free_;
  std::vector<std::atomic<std::int32_t>> free_next_;
  std::atomic<std::int32_t> shared_free_{-1};

  std::atomic<int> high_water_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::uint64_t> steals_{0};

  graph::Vertex num_vertices_;
};

}  // namespace gvc::worklist
