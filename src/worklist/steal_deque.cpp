#include "worklist/steal_deque.hpp"

#include <utility>

#include "util/check.hpp"

namespace gvc::worklist {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

StealDeque::StealDeque(graph::Vertex num_vertices, int capacity,
                       int steal_headroom)
    : capacity_(capacity), num_vertices_(num_vertices) {
  GVC_CHECK(capacity > 0);
  GVC_CHECK(steal_headroom >= 0);
  const std::size_t ring_size = next_pow2(static_cast<std::size_t>(capacity));
  mask_ = ring_size - 1;
  ring_ = std::vector<std::atomic<std::int32_t>>(ring_size);

  const std::size_t pool_size =
      static_cast<std::size_t>(capacity) +
      static_cast<std::size_t>(steal_headroom);
  pool_.resize(pool_size);
  free_next_ = std::vector<std::atomic<std::int32_t>>(pool_size);
  local_free_.reserve(pool_size);
  for (std::size_t i = pool_size; i > 0; --i)
    local_free_.push_back(static_cast<std::int32_t>(i - 1));
}

std::int32_t StealDeque::acquire_slot() {
  if (local_free_.empty()) {
    // Batch-claim everything thieves have released: one exchange detaches
    // the whole Treiber stack. The acquire pairs with the thieves' release
    // CASes (RMWs extend the release sequence, so claiming the head
    // synchronizes with every releaser in the chain), ordering their
    // payload move-outs before our overwrites.
    std::int32_t h = shared_free_.exchange(-1, std::memory_order_acquire);
    // The pool covers capacity + one in-flight extraction per concurrent
    // thief, so finding BOTH lists empty means the deque was built with
    // less steal_headroom than it has thieves — a configuration error, not
    // a transient state.
    GVC_CHECK_MSG(h >= 0, "steal deque pool exhausted: steal_headroom below "
                          "the number of concurrent consumers");
    while (h >= 0) {
      local_free_.push_back(h);
      h = free_next_[static_cast<std::size_t>(h)].load(
          std::memory_order_relaxed);
    }
  }
  const std::int32_t slot = local_free_.back();
  local_free_.pop_back();
  return slot;
}

void StealDeque::release_slot_shared(std::int32_t slot) {
  std::int32_t h = shared_free_.load(std::memory_order_relaxed);
  do {
    free_next_[static_cast<std::size_t>(slot)].store(
        h, std::memory_order_relaxed);
    // Release publishes our payload move-out to the owner's batch claim.
  } while (!shared_free_.compare_exchange_weak(h, slot,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
}

void StealDeque::publish_bottom(std::int64_t b, std::int32_t slot) {
  // The payload happens-before edge rides on the ring slot itself (release
  // here, acquire in try_steal_top), NOT on bottom_: a thief's bottom read
  // may hit one of the owner's relaxed restore stores, which since C++20
  // heads no release sequence — and ThreadSanitizer does not model
  // atomic_thread_fence, so the Lê et al. fence-to-store publication would
  // read as a race on the pool payload. Per-slot release/acquire is free on
  // x86 and keeps every edge visible to TSan.
  ring_[static_cast<std::size_t>(b) & mask_].store(slot,
                                                   std::memory_order_release);
  // Release also orders the ring-slot store before the publication, so a
  // thief that observes bottom > t is guaranteed the live generation's slot.
  bottom_.store(b + 1, std::memory_order_release);
}

template <typename Node>
void StealDeque::push_bottom_impl(Node&& node) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  // `t` may be stale (top_ is monotone), so b - t only overestimates the
  // size: the check is conservative and can never let the ring wrap onto a
  // live entry. The §IV-E depth bound keeps correct callers under it even
  // with no steals at all.
  GVC_CHECK_MSG(b - t < capacity_, "steal deque overflow");
  const std::int32_t slot = acquire_slot();
  pool_[static_cast<std::size_t>(slot)] = std::forward<Node>(node);
  publish_bottom(b, slot);

  pushes_.store(pushes_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  const int sz = static_cast<int>(b + 1 - t);
  if (sz > high_water_.load(std::memory_order_relaxed))
    high_water_.store(sz, std::memory_order_relaxed);
}

void StealDeque::push_bottom(const vc::DegreeArray& node) {
  push_bottom_impl(node);
}

void StealDeque::push_bottom(vc::DegreeArray&& node) {
  push_bottom_impl(std::move(node));
}

bool StealDeque::try_pop_bottom(vc::DegreeArray& out) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // The owner's speculative claim of entry b must be globally ordered
  // against thieves' top reads — the seq_cst fence pairs with the one in
  // try_steal_top so at most one side can believe it owns the last entry
  // without going through the top_ CAS.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);

  if (t > b) {  // already empty: undo the claim
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  const std::int32_t slot =
      ring_[static_cast<std::size_t>(b) & mask_].load(std::memory_order_relaxed);
  if (t == b) {
    // One element left: settle the race with thieves on top_ itself.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    if (!won) return false;  // a thief got it
  }

  // Swap rather than move so the caller's old buffers land in the pool slot
  // and get reused by a later push — the steady state allocates nothing.
  // The owner recycles through its private stack: no atomics.
  std::swap(out, pool_[static_cast<std::size_t>(slot)]);
  local_free_.push_back(slot);
  pops_.store(pops_.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  return true;
}

bool StealDeque::try_steal_top(vc::DegreeArray& out) {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return false;  // empty (or the owner is claiming the last one)

  // Read the pool index BEFORE the CAS: on success the read was of the live
  // generation (the owner cannot have lapped a live entry — see the
  // overflow check); on failure the value is discarded unread-from. Either
  // way only a 32-bit atomic was touched inside the race, never a payload.
  // The acquire pairs with publish_bottom's release store of this slot, so
  // the payload written before publication is visible after the CAS.
  const std::int32_t slot =
      ring_[static_cast<std::size_t>(t) & mask_].load(std::memory_order_acquire);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed))
    return false;  // lost to another thief or to the owner's last-entry pop

  std::swap(out, pool_[static_cast<std::size_t>(slot)]);
  release_slot_shared(slot);
  steals_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::int64_t StealDeque::footprint_bytes() const {
  return static_cast<std::int64_t>(pool_.size()) *
         static_cast<std::int64_t>(num_vertices_) *
         static_cast<std::int64_t>(sizeof(std::int32_t));
}

}  // namespace gvc::worklist
