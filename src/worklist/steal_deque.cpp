#include "worklist/steal_deque.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace gvc::worklist {

StealDeque::StealDeque(graph::Vertex num_vertices, int capacity)
    : num_vertices_(num_vertices) {
  GVC_CHECK(capacity > 0);
  entries_.resize(static_cast<std::size_t>(capacity));
}

void StealDeque::push_bottom(const vc::DegreeArray& node) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto cap = entries_.size();
  GVC_CHECK_MSG(bottom_ - top_ < cap, "steal deque overflow");
  entries_[bottom_ % cap] = node;
  ++bottom_;
  const int sz = static_cast<int>(bottom_ - top_);
  size_.store(sz, std::memory_order_relaxed);
  high_water_ = std::max(high_water_, sz);
  ++pushes_;
}

void StealDeque::push_bottom(vc::DegreeArray&& node) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto cap = entries_.size();
  GVC_CHECK_MSG(bottom_ - top_ < cap, "steal deque overflow");
  entries_[bottom_ % cap] = std::move(node);
  ++bottom_;
  const int sz = static_cast<int>(bottom_ - top_);
  size_.store(sz, std::memory_order_relaxed);
  high_water_ = std::max(high_water_, sz);
  ++pushes_;
}

bool StealDeque::try_pop_bottom(vc::DegreeArray& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bottom_ == top_) return false;
  --bottom_;
  out = std::move(entries_[bottom_ % entries_.size()]);
  size_.store(static_cast<int>(bottom_ - top_), std::memory_order_relaxed);
  ++pops_;
  return true;
}

bool StealDeque::try_steal_top(vc::DegreeArray& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bottom_ == top_) return false;
  out = std::move(entries_[top_ % entries_.size()]);
  ++top_;
  size_.store(static_cast<int>(bottom_ - top_), std::memory_order_relaxed);
  ++steals_;
  return true;
}

std::int64_t StealDeque::footprint_bytes() const {
  return static_cast<std::int64_t>(entries_.size()) *
         static_cast<std::int64_t>(num_vertices_) *
         static_cast<std::int64_t>(sizeof(std::int32_t));
}

}  // namespace gvc::worklist
