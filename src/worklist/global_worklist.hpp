#pragma once

// The global worklist of §IV-A/§IV-C: a broker queue of self-contained tree
// nodes (degree arrays), plus
//   * the donation policy — a branching block adds a child only while the
//     queue holds fewer than `threshold` entries, otherwise it keeps the
//     child on its local stack; and
//   * the termination protocol — a failed removal distinguishes "the queue
//     is transiently empty but blocks are still working" (wait and retry)
//     from "every block in the grid is waiting on an empty queue" (done).
// The PVC found-flag (§IV-A) is folded in as signal_stop().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/timer.hpp"
#include "vc/degree_array.hpp"
#include "worklist/broker_queue.hpp"

namespace gvc::worklist {

/// Aggregate counters for the worklist benches. One schema covers every
/// load-balancing structure: the global worklist fills the donation fields,
/// the WorkStealing deque ensemble fills the steal fields (zero elsewhere).
struct WorklistStats {
  std::uint64_t adds = 0;
  std::uint64_t removes = 0;
  std::uint64_t donations_rejected_threshold = 0;
  std::uint64_t donations_rejected_full = 0;
  std::uint64_t max_size_seen = 0;
  std::uint64_t steals = 0;          ///< successful cross-block steals
  std::uint64_t steal_attempts = 0;  ///< locked probes of non-empty victims
};

class GlobalWorklist {
 public:
  enum class RemoveOutcome {
    kGot,   ///< an entry was removed into `out`
    kDone,  ///< traversal finished (all blocks waiting on empty queue) or
            ///< a stop was signalled (PVC cover found)
  };

  /// num_blocks is the grid size: the number of blocks that participate in
  /// the termination protocol. Every one of them must eventually call
  /// remove() (and keep calling it until kDone).
  GlobalWorklist(std::size_t capacity, std::size_t threshold, int num_blocks);

  std::size_t capacity() const { return queue_.capacity(); }
  std::size_t threshold() const { return threshold_; }
  std::size_t size_approx() const { return queue_.size_approx(); }

  /// Unconditional add (used to seed the root). Aborts if the queue is full
  /// — seeding happens before the kernel starts, so fullness is a bug.
  void add(vc::DegreeArray node);

  /// The donation path of Fig. 4 lines 23-26: adds only if the queue is
  /// below the threshold (and not full). Returns true if the node was
  /// donated; on false the caller pushes to its local stack instead.
  bool try_donate(vc::DegreeArray&& node);

  /// The threshold gate of try_donate() without the push: returns whether a
  /// donation issued now would pass, counting a threshold rejection exactly
  /// like try_donate() does. The apply/undo solvers consult this BEFORE
  /// paying for the donation snapshot — a copying solver has the child in
  /// hand anyway, but a trail solver only materializes one to give it away.
  /// Approximate under concurrency (try_donate re-checks); exact when a
  /// single block runs, which keeps single-block donation patterns and
  /// stats bit-identical across the two branch-state modes.
  bool poll_donate_gate() {
    if (queue_.size_approx() >= threshold_) {
      rejected_threshold_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Blocking removal implementing the retry/termination loop of §IV-C.
  RemoveOutcome remove(vc::DegreeArray& out);

  /// PVC: signal every block (including those asleep in remove()) to stop.
  void signal_stop();
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Snapshot of the counters (call after the kernel has terminated).
  WorklistStats stats() const;

 private:
  BrokerQueue<vc::DegreeArray> queue_;
  std::size_t threshold_;
  int num_blocks_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::atomic<int> waiting_{0};

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;

  std::atomic<std::uint64_t> adds_{0};
  std::atomic<std::uint64_t> removes_{0};
  std::atomic<std::uint64_t> rejected_threshold_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> max_size_{0};
};

}  // namespace gvc::worklist
