#pragma once

// Bounded, linearizable MPMC FIFO — the CPU equivalent of the Broker Work
// Distributor / broker queue of Kerbl et al. [21] that the paper uses as its
// global worklist (§IV-C).
//
// Implementation: a Vyukov-style ring of ticketed cells. Each cell carries a
// sequence number; producers claim a ticket with a CAS on the head counter
// and publish by bumping the cell's sequence, consumers mirror the protocol
// on the tail counter. This reproduces the broker queue's properties that
// the algorithm depends on: bounded capacity, FIFO order, non-blocking
// try-push/try-pop, and an O(1) entry count for the donation threshold
// check.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace gvc::worklist {

template <typename T>
class BrokerQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit BrokerQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  BrokerQueue(const BrokerQueue&) = delete;
  BrokerQueue& operator=(const BrokerQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Number of enqueued entries. Exact when quiescent; a cheap, slightly
  /// stale view under concurrency — the same guarantee the GPU broker queue
  /// gives for its count, and all the donation threshold needs.
  std::size_t size_approx() const {
    std::int64_t n = count_.load(std::memory_order_relaxed);
    return n < 0 ? 0 : static_cast<std::size_t>(n);
  }

  bool empty_approx() const { return size_approx() == 0; }

  /// Enqueue; returns false when the queue is full, in which case `value`
  /// is left untouched (callers rely on this to fall back to their local
  /// stack without losing the node).
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Dequeue; returns false when the queue is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      auto dif = static_cast<std::intptr_t>(seq) -
                 static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    count_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::int64_t> count_{0};
};

}  // namespace gvc::worklist
