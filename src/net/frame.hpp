#pragma once

// net/frame — the byte-level substrate of the serving protocol: bounds-
// checked little-endian primitive codecs (ByteWriter/ByteReader), the frame
// header, and an incremental stream decoder (FrameDecoder) shared by the
// server reactor and the client reader thread.
//
// Wire frame layout (everything little-endian, see docs/serving.md):
//
//   u32  length      bytes that FOLLOW this field (header remainder +
//                    payload); a receiver never buffers more than
//                    max_frame_bytes per frame
//   u8   version     kProtocolVersion; a mismatch is fatal for the stream
//   u8   opcode      net::Op
//   u16  flags       reserved, 0 on the wire today (receivers ignore)
//   u64  request_id  client-assigned correlation id, echoed in replies —
//                    the multiplexing key that lets one connection carry
//                    thousands of in-flight tickets
//   ...  payload     opcode-specific (net/protocol.hpp)
//
// The decoder is deliberately paranoid: every length is validated before a
// single payload byte is interpreted, truncated/garbage input yields a
// typed error instead of UB, and nothing in this file aborts — malformed
// bytes from a socket are an expected runtime condition, not API misuse.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gvc::net {

inline constexpr std::uint8_t kProtocolVersion = 1;

/// Bytes of a frame header that follow the u32 length field.
inline constexpr std::size_t kFrameHeaderRest = 12;  // u8+u8+u16+u64

/// Default per-frame size cap (length-field value). Large enough for a
/// multi-million-edge CSR upload, small enough that one rogue frame cannot
/// balloon a connection buffer.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{64} << 20;

// ---------------------------------------------------------------------------
// ByteWriter — append-only little-endian encoder over a caller-owned vector.
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }

  /// u32 byte count + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + n);
  }

  std::size_t size() const { return out_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t>& out_;
};

// ---------------------------------------------------------------------------
// ByteReader — bounds-checked little-endian decoder over a byte span. Any
// under-run latches the fail flag and every subsequent read returns zero;
// callers check ok() once at the end instead of after every field.
// ---------------------------------------------------------------------------

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(take<std::uint64_t>()); }

  /// Counterpart of ByteWriter::str. The length is validated against the
  /// remaining bytes before anything is copied.
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Copies `n` raw bytes into `out`; fails (returns false) on under-run.
  bool raw(void* out, std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool ok() const { return ok_; }

  /// True when every byte was consumed and no read under-ran — the strict
  /// "payload exactly matches the schema" acceptance the decoders use.
  bool done() const { return ok_ && pos_ == size_; }

 private:
  template <typename T>
  T take() {
    if (!ok_ || sizeof(T) > remaining()) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frame — one decoded frame, and the encoder for outbound ones.
// ---------------------------------------------------------------------------

struct Frame {
  std::uint8_t opcode = 0;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends one fully-framed message (length prefix + header + payload) to
/// `out` — the unit the write queues carry. Returns false (leaving `out`
/// untouched) when the payload cannot be represented in the u32 length
/// field; truncating it would silently desync the stream.
bool encode_frame(std::vector<std::uint8_t>& out, std::uint8_t opcode,
                  std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload);

// ---------------------------------------------------------------------------
// FrameDecoder — incremental stream-to-frames conversion. feed() raw socket
// bytes in any chunking; next() yields complete frames until the buffer is
// exhausted. A protocol violation (oversize length, short header, version
// mismatch) is terminal for the stream: the connection must be dropped.
// ---------------------------------------------------------------------------

class FrameDecoder {
 public:
  enum class Next {
    kFrame,     ///< *out holds one complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream-fatal violation; see error()/error_detail()
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  Next next(Frame* out);

  /// Stable error name ("frame-too-large", "bad-version", "short-header")
  /// once next() returned kError; nullptr before.
  const char* error() const { return error_; }

  /// Bytes currently buffered (tests assert the decoder never hoards).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  const std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // compacted lazily in next()
  const char* error_ = nullptr;
};

}  // namespace gvc::net
