#include "net/protocol.hpp"

#include <algorithm>

namespace gvc::net {

namespace {

/// Sanity ceilings for untrusted solve configs: generous enough for any
/// legitimate request, tight enough that a hostile frame cannot drive the
/// occupancy planner or worklist allocation into absurd allocations or
/// GVC_CHECK aborts inside the daemon.
constexpr std::int32_t kMaxStartDepth = 24;
constexpr std::uint64_t kMaxWorklistCapacity = std::uint64_t{1} << 24;
constexpr std::int32_t kMaxDeviceSms = 1 << 16;
constexpr std::int32_t kMaxDeviceThreads = 1 << 20;

void encode_device(ByteWriter& w, const device::DeviceSpec& d) {
  // The spec's display name is cosmetic (not part of the config hash); the
  // daemon substitutes its own label on decode.
  w.i32(d.num_sms);
  w.i32(d.max_threads_per_block);
  w.i32(d.max_threads_per_sm);
  w.i32(d.max_blocks_per_sm);
  w.i64(d.shared_mem_per_sm_bytes);
  w.i64(d.shared_mem_per_block_bytes);
  w.i64(d.global_mem_bytes);
}

bool decode_device(ByteReader& r, device::DeviceSpec* d) {
  d->name = "remote";
  d->num_sms = r.i32();
  d->max_threads_per_block = r.i32();
  d->max_threads_per_sm = r.i32();
  d->max_blocks_per_sm = r.i32();
  d->shared_mem_per_sm_bytes = r.i64();
  d->shared_mem_per_block_bytes = r.i64();
  d->global_mem_bytes = r.i64();
  if (!r.ok()) return false;
  if (d->num_sms < 1 || d->num_sms > kMaxDeviceSms) return false;
  if (d->max_threads_per_block < 1 ||
      d->max_threads_per_block > kMaxDeviceThreads)
    return false;
  if (d->max_threads_per_sm < 1 || d->max_threads_per_sm > kMaxDeviceThreads)
    return false;
  if (d->max_blocks_per_sm < 1 || d->max_blocks_per_sm > kMaxDeviceThreads)
    return false;
  if (d->shared_mem_per_sm_bytes < 0 || d->shared_mem_per_block_bytes < 0 ||
      d->global_mem_bytes < 0)
    return false;
  return true;
}

std::uint8_t rules_mask(const vc::RuleSet& rules) {
  return static_cast<std::uint8_t>((rules.degree_one ? 1u : 0u) |
                                   (rules.degree_two_triangle ? 2u : 0u) |
                                   (rules.high_degree ? 4u : 0u));
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kUploadGraph: return "upload-graph";
    case Op::kSolve: return "solve";
    case Op::kCancel: return "cancel";
    case Op::kPoll: return "poll";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kPong: return "pong";
    case Op::kGraphAck: return "graph-ack";
    case Op::kAccepted: return "accepted";
    case Op::kResult: return "result";
    case Op::kCancelAck: return "cancel-ack";
    case Op::kStatusReply: return "status-reply";
    case Op::kStatsReply: return "stats-reply";
    case Op::kShutdownAck: return "shutdown-ack";
    case Op::kError: return "error";
  }
  return "?";
}

bool is_request_op(std::uint8_t op) {
  return op >= static_cast<std::uint8_t>(Op::kPing) &&
         op <= static_cast<std::uint8_t>(Op::kShutdown);
}

const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kFrameTooLarge: return "frame-too-large";
    case ErrorCode::kBadFrame: return "bad-frame";
    case ErrorCode::kBadOpcode: return "bad-opcode";
    case ErrorCode::kBadPayload: return "bad-payload";
    case ErrorCode::kUnknownGraph: return "unknown-graph";
    case ErrorCode::kUnknownInstance: return "unknown-instance";
    case ErrorCode::kBadGraph: return "bad-graph";
    case ErrorCode::kDuplicateId: return "duplicate-id";
    case ErrorCode::kUnknownTicket: return "unknown-ticket";
    case ErrorCode::kShuttingDown: return "shutting-down";
    case ErrorCode::kNotAllowed: return "not-allowed";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kConnectionLost: return "connection-lost";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Graph blob.
// ---------------------------------------------------------------------------

void encode_upload_graph(std::vector<std::uint8_t>& out,
                         std::uint64_t graph_id, const graph::CsrGraph& g) {
  ByteWriter w(out);
  w.u64(graph_id);
  const auto& offsets = g.offsets();
  const auto& adjacency = g.adjacency();
  w.u32(static_cast<std::uint32_t>(g.num_vertices()));
  w.u64(static_cast<std::uint64_t>(adjacency.size()));
  for (std::int64_t o : offsets) w.i64(o);
  for (graph::Vertex v : adjacency) w.u32(static_cast<std::uint32_t>(v));
}

bool decode_upload_graph(const std::vector<std::uint8_t>& payload,
                         std::uint64_t* graph_id, graph::CsrGraph* g,
                         std::string* why) {
  const auto fail = [&](const std::string& m) {
    if (why != nullptr) *why = m;
    return false;
  };
  ByteReader r(payload);
  *graph_id = r.u64();
  const std::uint32_t n = r.u32();
  const std::uint64_t arcs = r.u64();
  if (!r.ok()) return fail("truncated header");
  // Cross-check the declared sizes against the actual payload length before
  // allocating anything: a hostile header cannot make the daemon reserve
  // gigabytes for a 20-byte frame. The bounds are checked in division form
  // first — `arcs * 4` wraps u64 for arcs >= 2^62, which would otherwise
  // let a tiny frame slip past the equality check into a huge allocation.
  const std::uint64_t rest = r.remaining();
  if (static_cast<std::uint64_t>(n) > rest / 8 || arcs > rest / 4)
    return fail("declared sizes mismatch payload");
  const std::uint64_t expect =
      (static_cast<std::uint64_t>(n) + 1) * 8 + arcs * 4;
  if (rest != expect) return fail("declared sizes mismatch payload");
  if (arcs % 2 != 0) return fail("odd arc count (graph must be symmetric)");

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n) + 1);
  for (auto& o : offsets) o = r.i64();
  std::vector<graph::Vertex> adjacency(static_cast<std::size_t>(arcs));
  for (auto& v : adjacency) v = static_cast<graph::Vertex>(r.u32());
  if (!r.done()) return fail("truncated arrays");

  // Structural validation — the non-aborting twin of CsrGraph::validate().
  if (offsets.front() != 0) return fail("offsets[0] != 0");
  if (offsets.back() != static_cast<std::int64_t>(arcs))
    return fail("offsets[n] != arc count");
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) return fail("offsets not non-decreasing");
    const auto b = static_cast<std::size_t>(offsets[v]);
    const auto e = static_cast<std::size_t>(offsets[v + 1]);
    for (std::size_t i = b; i < e; ++i) {
      const graph::Vertex u = adjacency[i];
      if (u < 0 || static_cast<std::uint32_t>(u) >= n)
        return fail("neighbor out of range");
      if (u == static_cast<graph::Vertex>(v)) return fail("self-loop");
      if (i > b && adjacency[i] <= adjacency[i - 1])
        return fail("adjacency not sorted strictly ascending");
    }
  }
  // Symmetry: every arc (v, u) needs its mirror (u, v).
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(offsets[v]);
    const auto e = static_cast<std::size_t>(offsets[v + 1]);
    for (std::size_t i = b; i < e; ++i) {
      const auto u = static_cast<std::size_t>(adjacency[i]);
      const auto ub = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
      const auto ue =
          adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
      if (!std::binary_search(ub, ue, static_cast<graph::Vertex>(v)))
        return fail("asymmetric adjacency");
    }
  }

  *g = graph::CsrGraph(std::move(offsets), std::move(adjacency));
  return true;
}

void encode_graph_ack(std::vector<std::uint8_t>& out, const GraphAckMsg& m) {
  ByteWriter w(out);
  w.u64(m.graph_id);
  w.u64(m.canonical_hash);
  w.u32(m.num_vertices);
  w.u64(m.num_edges);
}

bool decode_graph_ack(const std::vector<std::uint8_t>& payload,
                      GraphAckMsg* m) {
  ByteReader r(payload);
  m->graph_id = r.u64();
  m->canonical_hash = r.u64();
  m->num_vertices = r.u32();
  m->num_edges = r.u64();
  return r.done();
}

// ---------------------------------------------------------------------------
// Solve request.
// ---------------------------------------------------------------------------

void encode_solve_request(std::vector<std::uint8_t>& out,
                          const SolveRequestMsg& m) {
  ByteWriter w(out);
  w.u8(m.by_name ? 1 : 0);
  if (m.by_name)
    w.str(m.instance);
  else
    w.u64(m.graph_id);

  const parallel::ParallelConfig& c = m.config;
  w.u8(static_cast<std::uint8_t>(m.method));
  w.u8(static_cast<std::uint8_t>(c.problem));
  w.i32(c.k);
  w.u8(static_cast<std::uint8_t>(c.semantics));
  w.u8(rules_mask(c.rules));
  w.u8(static_cast<std::uint8_t>(c.branch));
  w.u64(c.branch_seed);
  w.u8(static_cast<std::uint8_t>(c.branch_state));
  w.u8(static_cast<std::uint8_t>(c.kernel_dispatch));
  w.u8(static_cast<std::uint8_t>(c.max_degree_backend));
  w.i32(c.advertise_interval);
  w.i32(c.block_size_override);
  w.i32(c.grid_override);
  w.i32(c.start_depth);
  w.u64(static_cast<std::uint64_t>(c.worklist_capacity));
  w.f64(c.worklist_threshold_frac);
  encode_device(w, c.device);

  w.u64(m.limits.max_tree_nodes);
  w.f64(m.limits.time_limit_s);
  w.i32(m.priority);
  w.f64(m.deadline_s);
}

bool decode_solve_request(const std::vector<std::uint8_t>& payload,
                          SolveRequestMsg* m) {
  ByteReader r(payload);
  const std::uint8_t by_name = r.u8();
  if (by_name > 1) return false;
  m->by_name = by_name == 1;
  if (m->by_name) {
    m->instance = r.str();
    m->graph_id = 0;
    if (m->instance.empty()) return false;
  } else {
    m->graph_id = r.u64();
  }

  const std::uint8_t method = r.u8();
  if (method > static_cast<std::uint8_t>(parallel::Method::kWorkStealing))
    return false;
  m->method = static_cast<parallel::Method>(method);

  parallel::ParallelConfig& c = m->config;
  const std::uint8_t problem = r.u8();
  if (problem > static_cast<std::uint8_t>(vc::Problem::kPvc)) return false;
  c.problem = static_cast<vc::Problem>(problem);
  c.k = r.i32();
  const std::uint8_t semantics = r.u8();
  if (semantics > static_cast<std::uint8_t>(vc::ReduceSemantics::kIncremental))
    return false;
  c.semantics = static_cast<vc::ReduceSemantics>(semantics);
  const std::uint8_t rules = r.u8();
  if (rules > 7) return false;
  c.rules.degree_one = (rules & 1) != 0;
  c.rules.degree_two_triangle = (rules & 2) != 0;
  c.rules.high_degree = (rules & 4) != 0;
  const std::uint8_t branch = r.u8();
  if (branch > static_cast<std::uint8_t>(vc::BranchStrategy::kFirst))
    return false;
  c.branch = static_cast<vc::BranchStrategy>(branch);
  c.branch_seed = r.u64();
  const std::uint8_t branch_state = r.u8();
  if (branch_state > static_cast<std::uint8_t>(vc::BranchStateMode::kUndoTrail))
    return false;
  c.branch_state = static_cast<vc::BranchStateMode>(branch_state);
  const std::uint8_t dispatch = r.u8();
  if (dispatch > static_cast<std::uint8_t>(vc::KernelDispatch::kAuto))
    return false;
  c.kernel_dispatch = static_cast<vc::KernelDispatch>(dispatch);
  const std::uint8_t backend = r.u8();
  if (backend > static_cast<std::uint8_t>(vc::MaxDegreeBackend::kBuckets))
    return false;
  c.max_degree_backend = static_cast<vc::MaxDegreeBackend>(backend);
  c.advertise_interval = r.i32();
  c.block_size_override = r.i32();
  c.grid_override = r.i32();
  c.start_depth = r.i32();
  c.worklist_capacity = static_cast<std::size_t>(r.u64());
  c.worklist_threshold_frac = r.f64();
  if (!decode_device(r, &c.device)) return false;

  m->limits.max_tree_nodes = r.u64();
  m->limits.time_limit_s = r.f64();
  m->priority = r.i32();
  m->deadline_s = r.f64();
  if (!r.done()) return false;

  // Semantic ceilings (see the constants above).
  if (c.problem == vc::Problem::kPvc && c.k < 0) return false;
  if (c.advertise_interval < 0 || c.block_size_override < 0 ||
      c.grid_override < 0)
    return false;
  if (c.start_depth < 0 || c.start_depth > kMaxStartDepth) return false;
  if (c.worklist_capacity == 0 ||
      c.worklist_capacity > kMaxWorklistCapacity)
    return false;
  if (!(c.worklist_threshold_frac >= 0.0 && c.worklist_threshold_frac <= 1.0))
    return false;
  if (!(m->limits.time_limit_s >= 0.0)) return false;
  if (!(m->deadline_s >= 0.0)) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Accepted / Result.
// ---------------------------------------------------------------------------

void encode_accepted(std::vector<std::uint8_t>& out, const AcceptedMsg& m) {
  ByteWriter w(out);
  w.u64(m.job_id);
  w.u8(static_cast<std::uint8_t>((m.cache_hit ? 1u : 0u) |
                                 (m.coalesced ? 2u : 0u) |
                                 (m.rejected ? 4u : 0u)));
}

bool decode_accepted(const std::vector<std::uint8_t>& payload,
                     AcceptedMsg* m) {
  ByteReader r(payload);
  m->job_id = r.u64();
  const std::uint8_t flags = r.u8();
  if (flags > 7) return false;
  m->cache_hit = (flags & 1) != 0;
  m->coalesced = (flags & 2) != 0;
  m->rejected = (flags & 4) != 0;
  return r.done();
}

std::uint8_t wire_job_status(int service_status) {
  // service::JobStatus is already the stable 0..5 sequence the spec
  // documents; the cast lives here so a future enum reorder breaks exactly
  // one function (and its test) instead of the wire ABI.
  return static_cast<std::uint8_t>(service_status);
}

void encode_result(std::vector<std::uint8_t>& out, const ResultMsg& m) {
  ByteWriter w(out);
  w.u8(m.status);
  w.u8(static_cast<std::uint8_t>(m.outcome));
  w.i32(m.best_size);
  w.u64(m.tree_nodes);
  w.f64(m.seconds);
  w.f64(m.sim_seconds);
  w.i32(m.greedy_upper_bound);
  w.u32(static_cast<std::uint32_t>(m.cover.size()));
  for (graph::Vertex v : m.cover) w.u32(static_cast<std::uint32_t>(v));
}

bool decode_result(const std::vector<std::uint8_t>& payload, ResultMsg* m) {
  ByteReader r(payload);
  m->status = r.u8();
  if (m->status > 5) return false;
  const std::uint8_t outcome = r.u8();
  if (outcome > static_cast<std::uint8_t>(vc::Outcome::kCancelled))
    return false;
  m->outcome = static_cast<vc::Outcome>(outcome);
  m->best_size = r.i32();
  m->tree_nodes = r.u64();
  m->seconds = r.f64();
  m->sim_seconds = r.f64();
  m->greedy_upper_bound = r.i32();
  const std::uint32_t cover_size = r.u32();
  if (!r.ok() || cover_size * 4ull != r.remaining()) return false;
  m->cover.resize(cover_size);
  for (auto& v : m->cover) v = static_cast<graph::Vertex>(r.u32());
  return r.done();
}

// ---------------------------------------------------------------------------
// Small control payloads.
// ---------------------------------------------------------------------------

void encode_cancel(std::vector<std::uint8_t>& out, const CancelMsg& m) {
  ByteWriter w(out);
  w.u64(m.target_request_id);
}

bool decode_cancel(const std::vector<std::uint8_t>& payload, CancelMsg* m) {
  ByteReader r(payload);
  m->target_request_id = r.u64();
  return r.done();
}

void encode_cancel_ack(std::vector<std::uint8_t>& out, const CancelAckMsg& m) {
  ByteWriter w(out);
  w.u8(m.hit ? 1 : 0);
}

bool decode_cancel_ack(const std::vector<std::uint8_t>& payload,
                       CancelAckMsg* m) {
  ByteReader r(payload);
  const std::uint8_t hit = r.u8();
  if (hit > 1) return false;
  m->hit = hit == 1;
  return r.done();
}

void encode_status_reply(std::vector<std::uint8_t>& out,
                         const StatusReplyMsg& m) {
  ByteWriter w(out);
  w.u8(m.known ? 1 : 0);
  w.u8(m.status);
}

bool decode_status_reply(const std::vector<std::uint8_t>& payload,
                         StatusReplyMsg* m) {
  ByteReader r(payload);
  const std::uint8_t known = r.u8();
  if (known > 1) return false;
  m->known = known == 1;
  m->status = r.u8();
  if (m->status > 5) return false;
  return r.done();
}

void encode_error(std::vector<std::uint8_t>& out, const ErrorMsg& m) {
  ByteWriter w(out);
  w.u16(static_cast<std::uint16_t>(m.code));
  w.str(m.message);
}

bool decode_error(const std::vector<std::uint8_t>& payload, ErrorMsg* m) {
  ByteReader r(payload);
  m->code = static_cast<ErrorCode>(r.u16());
  m->message = r.str();
  return r.done();
}

void encode_stats_reply(std::vector<std::uint8_t>& out, const std::string& s) {
  ByteWriter w(out);
  w.str(s);
}

bool decode_stats_reply(const std::vector<std::uint8_t>& payload,
                        std::string* s) {
  ByteReader r(payload);
  *s = r.str();
  return r.done();
}

}  // namespace gvc::net
