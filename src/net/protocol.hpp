#pragma once

// net/protocol — the message layer of the serving protocol: opcodes, the
// error taxonomy, typed payload structs with encode/decode pairs, and the
// CSR graph blob codec with a non-aborting structural validator (bytes off
// a socket are untrusted; CsrGraph::validate() aborts and is therefore the
// wrong tool on this path).
//
// The surface is modeled on the yipc exemplar (create/send/send_sync/recv
// keyed by ids over a shared datablock): a client uploads or names a graph,
// sends Solve frames carrying the full request identity, and receives
// ticket-keyed Accepted/Result frames fully asynchronously — the shared
// datablock behind the daemon is the SolveService's ResultCache, so
// identical requests from different connections coalesce exactly like
// in-process submissions. Wire schema details live in docs/serving.md.
//
// Every decode_* returns false (never aborts) on malformed payloads: short
// buffers, trailing garbage, out-of-range enum values. Decoders accept a
// payload only when it matches the schema exactly (ByteReader::done()).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "net/frame.hpp"
#include "parallel/config.hpp"
#include "parallel/solver.hpp"

namespace gvc::net {

// ---------------------------------------------------------------------------
// Opcodes. Requests have the high bit clear, replies have it set; kError can
// answer any request. Values are wire ABI — append, never renumber.
// ---------------------------------------------------------------------------

enum class Op : std::uint8_t {
  // client -> server
  kPing = 0x01,
  kUploadGraph = 0x02,
  kSolve = 0x03,
  kCancel = 0x04,
  kPoll = 0x05,
  kStats = 0x06,
  kShutdown = 0x07,  ///< graceful daemon stop; honored only when the server
                     ///< was started with allow_remote_shutdown

  // server -> client
  kPong = 0x81,
  kGraphAck = 0x82,
  kAccepted = 0x83,     ///< submission fate known (queued/hit/coalesced/...)
  kResult = 0x84,       ///< the ticket's terminal record
  kCancelAck = 0x85,
  kStatusReply = 0x86,  ///< answer to kPoll
  kStatsReply = 0x87,
  kShutdownAck = 0x88,
  kError = 0xFF,
};

const char* op_name(Op op);

/// True for opcodes a server accepts from a client.
bool is_request_op(std::uint8_t op);

// ---------------------------------------------------------------------------
// Error taxonomy. Stream-fatal codes mean the connection is beyond repair
// (framing is lost or hostile) and is dropped after the error frame; the
// request-scoped ones fail one request id and leave the stream healthy.
// ---------------------------------------------------------------------------

enum class ErrorCode : std::uint16_t {
  kNone = 0,
  // stream-fatal
  kBadVersion = 1,
  kFrameTooLarge = 2,
  kBadFrame = 3,
  // request-scoped
  kBadOpcode = 10,
  kBadPayload = 11,
  kUnknownGraph = 12,
  kUnknownInstance = 13,
  kBadGraph = 14,        ///< blob decoded but violates CSR invariants
  kDuplicateId = 15,     ///< request id or graph id already live
  kUnknownTicket = 16,
  kShuttingDown = 17,
  kNotAllowed = 18,      ///< e.g. kShutdown without allow_remote_shutdown
  kInternal = 19,
  // client-side synthetic (never on the wire)
  kConnectionLost = 100,
};

const char* error_code_name(ErrorCode c);

struct ErrorMsg {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

// ---------------------------------------------------------------------------
// Graph upload.
// ---------------------------------------------------------------------------

struct GraphAckMsg {
  std::uint64_t graph_id = 0;
  std::uint64_t canonical_hash = 0;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
};

/// UploadGraph payload: u64 graph_id + CSR blob (u32 n, u64 arc count,
/// n+1 i64 offsets, arc-count u32 adjacency).
void encode_upload_graph(std::vector<std::uint8_t>& out,
                         std::uint64_t graph_id, const graph::CsrGraph& g);

/// Decodes and structurally validates an uploaded blob. On failure returns
/// false and names the violation in `why` (never aborts — socket bytes are
/// untrusted). Validation enforces the CsrGraph invariants: offsets
/// non-decreasing from 0 to the arc count, adjacency sorted/duplicate-free/
/// in-range per vertex, no self-loops, and symmetry.
bool decode_upload_graph(const std::vector<std::uint8_t>& payload,
                         std::uint64_t* graph_id, graph::CsrGraph* g,
                         std::string* why);

void encode_graph_ack(std::vector<std::uint8_t>& out, const GraphAckMsg& m);
bool decode_graph_ack(const std::vector<std::uint8_t>& payload,
                      GraphAckMsg* m);

// ---------------------------------------------------------------------------
// Solve request: the full request identity — graph reference, method, the
// ParallelConfig fields (including the device spec, so a daemon configured
// to run submitted configs verbatim reproduces a client-side direct call
// bit-for-bit), plus the execution-policy envelope (limits, priority,
// relative deadline) that maps 1:1 onto service::JobSpec.
// ---------------------------------------------------------------------------

struct SolveRequestMsg {
  /// Graph reference: a previously uploaded id, or a named catalog instance
  /// at the daemon's catalog scale.
  bool by_name = false;
  std::uint64_t graph_id = 0;
  std::string instance;

  parallel::Method method = parallel::Method::kHybrid;
  parallel::ParallelConfig config;  ///< device included; see above

  vc::Limits limits;
  std::int32_t priority = 0;
  double deadline_s = 0.0;  ///< relative to server-side admission; 0 = none
};

void encode_solve_request(std::vector<std::uint8_t>& out,
                          const SolveRequestMsg& m);
bool decode_solve_request(const std::vector<std::uint8_t>& payload,
                          SolveRequestMsg* m);

// ---------------------------------------------------------------------------
// Submission fate + terminal result. JobStatus travels as a stable u8
// (0 queued, 1 running, 2 done, 3 expired, 4 cancelled, 5 rejected) so the
// wire ABI survives refactors of the in-process enum.
// ---------------------------------------------------------------------------

struct AcceptedMsg {
  std::uint64_t job_id = 0;   ///< server-side JobId (diagnostic)
  bool cache_hit = false;
  bool coalesced = false;
  bool rejected = false;      ///< refused at admission (backpressure)
};

void encode_accepted(std::vector<std::uint8_t>& out, const AcceptedMsg& m);
bool decode_accepted(const std::vector<std::uint8_t>& payload, AcceptedMsg* m);

struct ResultMsg {
  std::uint8_t status = 0;  ///< wire JobStatus (see above)
  vc::Outcome outcome = vc::Outcome::kOptimal;
  std::int32_t best_size = -1;
  std::vector<graph::Vertex> cover;
  std::uint64_t tree_nodes = 0;
  double seconds = 0.0;
  double sim_seconds = 0.0;
  std::int32_t greedy_upper_bound = 0;
};

void encode_result(std::vector<std::uint8_t>& out, const ResultMsg& m);
bool decode_result(const std::vector<std::uint8_t>& payload, ResultMsg* m);

/// The wire status byte for a service JobStatus (stable mapping).
std::uint8_t wire_job_status(int service_status);

// ---------------------------------------------------------------------------
// Small control payloads.
// ---------------------------------------------------------------------------

struct CancelMsg {
  std::uint64_t target_request_id = 0;
};
struct CancelAckMsg {
  bool hit = false;  ///< a live (non-terminal) job received the cancel
};
struct StatusReplyMsg {
  bool known = false;
  std::uint8_t status = 0;  ///< wire JobStatus; valid when known
};

void encode_cancel(std::vector<std::uint8_t>& out, const CancelMsg& m);
bool decode_cancel(const std::vector<std::uint8_t>& payload, CancelMsg* m);
void encode_cancel_ack(std::vector<std::uint8_t>& out, const CancelAckMsg& m);
bool decode_cancel_ack(const std::vector<std::uint8_t>& payload,
                       CancelAckMsg* m);
void encode_status_reply(std::vector<std::uint8_t>& out,
                         const StatusReplyMsg& m);
bool decode_status_reply(const std::vector<std::uint8_t>& payload,
                         StatusReplyMsg* m);
void encode_error(std::vector<std::uint8_t>& out, const ErrorMsg& m);
bool decode_error(const std::vector<std::uint8_t>& payload, ErrorMsg* m);

/// kStats reply payload is one string (the obs::Registry JSON dump).
void encode_stats_reply(std::vector<std::uint8_t>& out, const std::string& s);
bool decode_stats_reply(const std::vector<std::uint8_t>& payload,
                        std::string* s);

}  // namespace gvc::net
