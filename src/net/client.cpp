#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gvc::net {

bool Client::connect(const std::string& host, int port, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return false;
  };
  if (fd_ >= 0) {
    if (error != nullptr) *error = "already connected";
    return false;
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + host + ")");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return fail("connect");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  {
    std::lock_guard<std::mutex> lock(mutex_);
    dead_ = false;
  }
  reader_ = std::thread([this] { reader_loop(); });
  return true;
}

void Client::close() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  fail_all("client closed");
}

bool Client::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !dead_;
}

std::uint64_t Client::register_pending(std::shared_ptr<Pending>* entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return 0;
  const std::uint64_t id = next_id_++;
  *entry = std::make_shared<Pending>();
  pending_.emplace(id, *entry);
  return id;
}

bool Client::send_frame(Op op, std::uint64_t id,
                        const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  if (!encode_frame(wire, static_cast<std::uint8_t>(op), id, payload))
    return false;  // payload exceeds the u32 length field
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // reader sees the broken stream and fails the pendings
  }
  return true;
}

void Client::reader_loop() {
  FrameDecoder decoder;
  std::uint8_t buf[64 * 1024];
  Frame f;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      fail_all("connection lost");
      return;
    }
    decoder.feed(buf, static_cast<std::size_t>(n));
    for (;;) {
      const FrameDecoder::Next next = decoder.next(&f);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kError) {
        fail_all(decoder.error());
        return;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = pending_.find(f.request_id);
      if (it == pending_.end()) continue;  // consumed or never ours
      Pending& p = *it->second;
      if (f.opcode == static_cast<std::uint8_t>(Op::kAccepted)) {
        AcceptedMsg accepted;
        if (decode_accepted(f.payload, &accepted)) {
          p.has_accepted = true;
          p.accepted = accepted;
        } else {
          p.done = p.failed = true;
          p.error = {ErrorCode::kBadPayload, "undecodable Accepted frame"};
        }
      } else if (f.opcode == static_cast<std::uint8_t>(Op::kError)) {
        p.done = p.failed = true;
        if (!decode_error(f.payload, &p.error))
          p.error = {ErrorCode::kBadPayload, "undecodable error frame"};
      } else {
        p.done = true;
        p.reply_op = f.opcode;
        p.payload = f.payload;
      }
      cv_.notify_all();
    }
  }
}

void Client::fail_all(const char* why) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_ && pending_.empty()) return;
  dead_ = true;
  for (auto& [id, p] : pending_) {
    if (p->done) continue;
    p->done = p->failed = true;
    p->error = {ErrorCode::kConnectionLost, why};
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Async solve path.
// ---------------------------------------------------------------------------

std::uint64_t Client::submit(const SolveRequestMsg& req) {
  std::shared_ptr<Pending> entry;
  const std::uint64_t id = register_pending(&entry);
  if (id == 0) return 0;
  std::vector<std::uint8_t> payload;
  encode_solve_request(payload, req);
  send_frame(Op::kSolve, id, payload);
  return id;
}

bool Client::wait_accepted(std::uint64_t id, AcceptedMsg* out,
                           ErrorMsg* err) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    if (err != nullptr) *err = {ErrorCode::kUnknownTicket, "unknown id"};
    return false;
  }
  const std::shared_ptr<Pending> p = it->second;
  cv_.wait(lock, [&] { return p->has_accepted || p->done; });
  if (p->has_accepted) {
    *out = p->accepted;
    return true;
  }
  if (err != nullptr) *err = p->error;
  pending_.erase(id);  // terminal failure; nothing further will arrive
  return false;
}

bool Client::wait_result(std::uint64_t id, ResultMsg* out, ErrorMsg* err) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    if (err != nullptr) *err = {ErrorCode::kUnknownTicket, "unknown id"};
    return false;
  }
  const std::shared_ptr<Pending> p = it->second;
  cv_.wait(lock, [&] { return p->done; });
  pending_.erase(id);
  lock.unlock();

  if (p->failed) {
    if (err != nullptr) *err = p->error;
    return false;
  }
  if (p->reply_op != static_cast<std::uint8_t>(Op::kResult) ||
      !decode_result(p->payload, out)) {
    if (err != nullptr)
      *err = {ErrorCode::kBadPayload, "unexpected or undecodable reply"};
    return false;
  }
  return true;
}

bool Client::poll_result(std::uint64_t id, ResultMsg* out, bool* failed,
                         ErrorMsg* err) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = pending_.find(id);
  if (it == pending_.end() || !it->second->done) return false;
  const std::shared_ptr<Pending> p = it->second;
  pending_.erase(it);
  lock.unlock();

  if (p->failed) {
    if (failed != nullptr) *failed = true;
    if (err != nullptr) *err = p->error;
    return true;
  }
  if (failed != nullptr) *failed = false;
  if (p->reply_op != static_cast<std::uint8_t>(Op::kResult) ||
      !decode_result(p->payload, out)) {
    if (failed != nullptr) *failed = true;
    if (err != nullptr)
      *err = {ErrorCode::kBadPayload, "unexpected or undecodable reply"};
  }
  return true;
}

// ---------------------------------------------------------------------------
// Synchronous round trips.
// ---------------------------------------------------------------------------

bool Client::roundtrip(Op op, const std::vector<std::uint8_t>& payload,
                       Pending* out) {
  std::shared_ptr<Pending> entry;
  const std::uint64_t id = register_pending(&entry);
  if (id == 0) return false;
  send_frame(op, id, payload);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return entry->done; });
  pending_.erase(id);
  *out = *entry;
  return true;
}

bool Client::ping() {
  Pending p;
  return roundtrip(Op::kPing, {}, &p) && !p.failed &&
         p.reply_op == static_cast<std::uint8_t>(Op::kPong);
}

bool Client::upload_graph(std::uint64_t graph_id, const graph::CsrGraph& g,
                          GraphAckMsg* ack, ErrorMsg* err) {
  std::vector<std::uint8_t> payload;
  encode_upload_graph(payload, graph_id, g);
  Pending p;
  if (!roundtrip(Op::kUploadGraph, payload, &p)) return false;
  if (p.failed) {
    if (err != nullptr) *err = p.error;
    return false;
  }
  GraphAckMsg local;
  if (p.reply_op != static_cast<std::uint8_t>(Op::kGraphAck) ||
      !decode_graph_ack(p.payload, &local)) {
    if (err != nullptr)
      *err = {ErrorCode::kBadPayload, "unexpected or undecodable reply"};
    return false;
  }
  if (ack != nullptr) *ack = local;
  return true;
}

bool Client::cancel(std::uint64_t id, bool* hit) {
  std::vector<std::uint8_t> payload;
  encode_cancel(payload, CancelMsg{id});
  Pending p;
  if (!roundtrip(Op::kCancel, payload, &p) || p.failed) return false;
  CancelAckMsg ack;
  if (p.reply_op != static_cast<std::uint8_t>(Op::kCancelAck) ||
      !decode_cancel_ack(p.payload, &ack))
    return false;
  if (hit != nullptr) *hit = ack.hit;
  return true;
}

bool Client::poll_status(std::uint64_t id, StatusReplyMsg* out) {
  std::vector<std::uint8_t> payload;
  encode_cancel(payload, CancelMsg{id});  // same one-u64 payload shape
  Pending p;
  if (!roundtrip(Op::kPoll, payload, &p) || p.failed) return false;
  return p.reply_op == static_cast<std::uint8_t>(Op::kStatusReply) &&
         decode_status_reply(p.payload, out);
}

bool Client::stats_json(std::string* out) {
  Pending p;
  if (!roundtrip(Op::kStats, {}, &p) || p.failed) return false;
  return p.reply_op == static_cast<std::uint8_t>(Op::kStatsReply) &&
         decode_stats_reply(p.payload, out);
}

bool Client::request_shutdown(ErrorMsg* err) {
  Pending p;
  if (!roundtrip(Op::kShutdown, {}, &p)) return false;
  if (p.failed) {
    if (err != nullptr) *err = p.error;
    return false;
  }
  return p.reply_op == static_cast<std::uint8_t>(Op::kShutdownAck);
}

}  // namespace gvc::net
