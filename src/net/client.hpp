#pragma once

// net/client — the C++ client of the serving protocol. One TCP connection,
// one background reader thread, and a request-id-keyed pending table: any
// number of threads may submit concurrently, and thousands of solves can be
// in flight on the single connection at once (the multiplexing the wire
// protocol is built for).
//
// Call shapes:
//
//  * submit() is fully async: it assigns a request id, ships the Solve
//    frame, and returns immediately. wait_accepted()/wait_result() block on
//    that id; poll_result() doesn't. cancel() maps onto the server-side
//    JobTicket::cancel(), and SolveRequestMsg::deadline_s onto the
//    service's queue-deadline admission — the same semantics an in-process
//    submitter gets.
//
//  * The small ops (ping, upload_graph, stats, poll_status, shutdown) are
//    synchronous round trips built on the same machinery.
//
// Connection loss fails every pending request with the synthetic
// ErrorCode::kConnectionLost and makes every later call return false — the
// client never fabricates results. Thread-safe throughout; wait_* consumes
// the id's entry, so each id should be waited on by one thread.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"

namespace gvc::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (IPv4 dotted quad or "localhost") and starts the reader.
  bool connect(const std::string& host, int port,
               std::string* error = nullptr);

  /// Closes the socket, joins the reader, fails all pending requests.
  void close();

  bool connected() const;

  // --- async solve path ---------------------------------------------------

  /// Ships a Solve frame; returns its request id (0 when disconnected).
  std::uint64_t submit(const SolveRequestMsg& req);

  /// Blocks until the submission's fate is known (Accepted or error).
  /// Returns false on error/disconnect, with the reason in *err. The entry
  /// stays pending — wait_result() still applies.
  bool wait_accepted(std::uint64_t id, AcceptedMsg* out,
                     ErrorMsg* err = nullptr);

  /// Blocks until the Result frame (or an error) for `id` arrives, then
  /// consumes the entry. Returns false with *err filled on error.
  bool wait_result(std::uint64_t id, ResultMsg* out, ErrorMsg* err = nullptr);

  /// Non-blocking wait_result. Returns false while still in flight.
  bool poll_result(std::uint64_t id, ResultMsg* out, bool* failed = nullptr,
                   ErrorMsg* err = nullptr);

  /// Round trip to Op::kCancel for an in-flight submission. *hit reports
  /// whether a live job received it. The submission's wait_result() then
  /// completes with the cancelled record.
  bool cancel(std::uint64_t id, bool* hit = nullptr);

  // --- synchronous ops ----------------------------------------------------

  bool ping();
  bool upload_graph(std::uint64_t graph_id, const graph::CsrGraph& g,
                    GraphAckMsg* ack = nullptr, ErrorMsg* err = nullptr);
  bool poll_status(std::uint64_t id, StatusReplyMsg* out);
  /// Fetches the daemon's obs::Registry JSON dump.
  bool stats_json(std::string* out);
  /// Op::kShutdown (daemon must allow_remote_shutdown).
  bool request_shutdown(ErrorMsg* err = nullptr);

 private:
  struct Pending {
    bool has_accepted = false;
    AcceptedMsg accepted;
    bool done = false;    ///< reply_op/payload (or error) final
    bool failed = false;  ///< `error` describes why
    std::uint8_t reply_op = 0;
    std::vector<std::uint8_t> payload;
    ErrorMsg error;
  };

  /// Registers a fresh id; waiters hold the returned shared_ptr, so a
  /// rehash of the map (concurrent submits) never invalidates what a
  /// blocked wait_* references.
  std::uint64_t register_pending(std::shared_ptr<Pending>* entry);
  bool send_frame(Op op, std::uint64_t id,
                  const std::vector<std::uint8_t>& payload);
  /// Sends `op` and blocks until the id's entry is done; consumes it.
  bool roundtrip(Op op, const std::vector<std::uint8_t>& payload,
                 Pending* out);
  void reader_loop();
  void fail_all(const char* why);

  int fd_ = -1;
  std::thread reader_;
  bool dead_ = true;  ///< guarded by mutex_

  mutable std::mutex mutex_;  ///< pending_, next_id_, dead_
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::uint64_t next_id_ = 1;

  std::mutex write_mutex_;  ///< serializes whole frames onto the socket
};

}  // namespace gvc::net
