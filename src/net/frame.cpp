#include "net/frame.hpp"

#include <limits>

namespace gvc::net {

bool encode_frame(std::vector<std::uint8_t>& out, std::uint8_t opcode,
                  std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload) {
  if (payload.size() >
      std::numeric_limits<std::uint32_t>::max() - kFrameHeaderRest)
    return false;
  ByteWriter w(out);
  w.u32(static_cast<std::uint32_t>(kFrameHeaderRest + payload.size()));
  w.u8(kProtocolVersion);
  w.u8(opcode);
  w.u16(0);  // flags, reserved
  w.u64(request_id);
  w.raw(payload.data(), payload.size());
  return true;
}

FrameDecoder::Next FrameDecoder::next(Frame* out) {
  if (error_ != nullptr) return Next::kError;

  // Compact once the consumed prefix dominates the buffer, so a long-lived
  // connection doesn't accrete every frame it ever parsed.
  if (consumed_ > 0 && consumed_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }

  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return Next::kNeedMore;

  ByteReader head(buf_.data() + consumed_, avail);
  const std::uint32_t length = head.u32();
  if (length < kFrameHeaderRest) {
    error_ = "short-header";
    return Next::kError;
  }
  if (length > max_frame_bytes_) {
    error_ = "frame-too-large";
    return Next::kError;
  }
  if (avail < 4 + static_cast<std::size_t>(length)) return Next::kNeedMore;

  const std::uint8_t version = head.u8();
  if (version != kProtocolVersion) {
    error_ = "bad-version";
    return Next::kError;
  }
  out->opcode = head.u8();
  out->flags = head.u16();
  out->request_id = head.u64();
  const std::size_t payload_size = length - kFrameHeaderRest;
  const std::uint8_t* payload_begin = buf_.data() + consumed_ + 4 +
                                      kFrameHeaderRest;
  out->payload.assign(payload_begin, payload_begin + payload_size);
  consumed_ += 4 + length;
  return Next::kFrame;
}

}  // namespace gvc::net
