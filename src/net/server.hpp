#pragma once

// net/server — the serving daemon's engine: a poll()-based single-thread
// reactor that accepts TCP connections, frames/deframes the wire protocol
// (net/frame, net/protocol), and bridges requests onto a SolveService.
//
// Concurrency shape:
//
//  * ONE reactor thread owns every socket, every connection's decoder and
//    write queue, and the per-connection ticket tables. No socket state is
//    ever touched from another thread, so the reactor needs no locks for
//    it.
//
//  * Solve completions happen on SolveService worker threads. The bridge is
//    JobState::add_waiter(): the registered callback posts a tiny
//    {connection, request} event onto a mutex-guarded completion bus and
//    writes one byte into the reactor's wake pipe — the worker never
//    touches a socket and never blocks on one. The reactor drains the bus
//    on wake-up and serializes the Result frames itself.
//
//  * The completion bus is held by shared_ptr from both the server and
//    every registered waiter, so a callback that fires during (or after)
//    server teardown posts onto a still-valid, merely disconnected bus
//    instead of a dangling pointer.
//
// Backpressure: each connection's pending-write queue is bounded. When it
// exceeds ServerOptions::max_write_queue_bytes the reactor stops reading
// from that connection (its kernel receive buffer then fills, and TCP flow
// control pushes back on the client) until the queue drains below half the
// bound. Solve admission itself uses whatever FullPolicy the SolveService
// was built with — daemons should use FullPolicy::kReject, because a
// blocking submit would stall the reactor for every connection.
//
// Disconnect: dropping a connection cancels every non-coalesced job it
// still has in flight (JobTicket::cancel()) and releases the tickets; the
// ResultCache's dead-owner adoption (PR 3) then lets the next identical
// submission reclaim the key. Coalesced tickets are simply released —
// cancelling them would kill a solve other connections are waiting on.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "service/solve_service.hpp"

namespace gvc::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";

  /// 0 = kernel-assigned ephemeral port; read the bound one via port().
  int port = 0;

  int listen_backlog = 128;

  /// Per-frame size cap fed to each connection's FrameDecoder.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Pending-write bound per connection; reads pause above it and resume
  /// below half of it (see header comment).
  std::size_t max_write_queue_bytes = std::size_t{8} << 20;

  /// Uploaded-graph registrations a single connection may hold.
  std::size_t max_graphs_per_connection = 64;

  /// Uploaded-graph byte budgets (measured as upload-payload wire bytes,
  /// which bound the decoded arrays): per connection, and across all
  /// connections. Without these, max_graphs_per_connection still lets each
  /// connection pin max_graphs * max_frame_bytes of CSR data — a memory-
  /// exhaustion vector for any non-loopback deployment. Uploads over
  /// budget are refused with ErrorCode::kNotAllowed.
  std::size_t max_graph_bytes_per_connection = std::size_t{256} << 20;
  std::size_t max_graph_bytes_total = std::size_t{1} << 30;

  /// Resolves a kSolve by-name reference to a graph (e.g. the harness
  /// catalog). Null, or a null return, yields kUnknownInstance. Called on
  /// the reactor thread; must be cheap after first use (memoize).
  std::function<std::shared_ptr<const graph::CsrGraph>(const std::string&)>
      instance_resolver;

  /// Honor Op::kShutdown from clients (CI smoke uses this; default off).
  bool allow_remote_shutdown = false;
};

class Server {
 public:
  /// The service must outlive the server. The server registers the
  /// gvc_net_* metric families on construction.
  Server(service::SolveService& service, ServerOptions options);

  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and launches the reactor thread. Returns false (with
  /// the reason in *error) on bind/listen failure.
  bool start(std::string* error = nullptr);

  /// The bound port (valid after start(); resolves port 0 requests).
  int port() const { return port_; }

  /// Stops admission of new solves. Async-signal-safe (one atomic store +
  /// one pipe write) — this IS the SIGINT/SIGTERM hook. In-flight jobs
  /// keep running and their results keep flowing; new kSolve frames get
  /// ErrorCode::kShuttingDown.
  void begin_shutdown();

  /// True once begin_shutdown() ran or a permitted remote kShutdown frame
  /// arrived. Daemon main loops poll this.
  bool shutdown_requested() const {
    return admission_closed_.load(std::memory_order_acquire);
  }

  /// Graceful stop: closes admission, waits up to `drain_timeout_s` for
  /// in-flight jobs to turn terminal and their Result frames to flush,
  /// then tears down every connection (cancelling whatever remains) and
  /// joins the reactor. Idempotent.
  void stop(double drain_timeout_s = 10.0);

  /// Live gauges (exact; the reactor maintains them with atomics) — used
  /// by tests and the daemon's final report.
  std::uint64_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t jobs_inflight() const {
    return jobs_inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingJob {
    service::JobTicket ticket;
    double accept_s = 0.0;  ///< service clock at admission (turnaround)
  };

  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;  ///< pending bytes, [out_pos, end)
    std::size_t out_pos = 0;
    bool read_paused = false;
    bool dead = false;
    std::unordered_map<std::uint64_t, PendingJob> jobs;  ///< by request id
    std::unordered_map<std::uint64_t, std::shared_ptr<const graph::CsrGraph>>
        graphs;
    std::size_t graph_bytes = 0;  ///< wire bytes charged against the budget

    Connection(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}
    std::size_t pending_out() const { return out.size() - out_pos; }
  };

  /// The worker-thread → reactor bridge (see header comment). Outlives the
  /// server via shared ownership from registered waiters.
  struct CompletionBus {
    std::mutex mutex;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> events;  // conn,req
    int wake_fd = -1;  ///< -1 once the server detached (events then inert)

    void post(std::uint64_t conn_id, std::uint64_t request_id);
  };

  void reactor_loop();
  void wake();
  void accept_ready();
  void read_ready(Connection& c);
  void write_ready(Connection& c);
  void handle_frame(Connection& c, const Frame& f);
  void handle_upload(Connection& c, const Frame& f);
  void handle_solve(Connection& c, const Frame& f);
  void handle_cancel(Connection& c, const Frame& f);
  void handle_poll(Connection& c, const Frame& f);
  void drain_completions();
  void deliver_result(Connection& c, std::uint64_t request_id);
  void send_frame(Connection& c, Op op, std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload);
  void send_error(Connection& c, std::uint64_t request_id, ErrorCode code,
                  const std::string& message);
  void update_backpressure(Connection& c);
  void close_connection(Connection& c);

  service::SolveService& service_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  /// Atomic because begin_shutdown() reads it from a signal handler while
  /// stop() detaches it; stop() swaps in -1 BEFORE closing (the same
  /// discipline as CompletionBus::wake_fd) so a concurrent signal never
  /// writes into a closed, possibly kernel-reused descriptor.
  std::atomic<int> wake_write_fd_{-1};
  int port_ = 0;

  std::thread reactor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> admission_closed_{false};

  std::shared_ptr<CompletionBus> bus_;
  std::uint64_t next_conn_id_ = 1;  // reactor-thread only
  std::size_t graph_bytes_total_ = 0;  // reactor-thread only
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> open_connections_{0};
  std::atomic<std::uint64_t> jobs_inflight_{0};
  std::atomic<std::uint64_t> pending_out_bytes_{0};

  // gvc_net_* registry handles. Gauges capture `this`; their handles are
  // declared last so they unregister first (obs/metrics.hpp rule (3)).
  std::shared_ptr<obs::Counter> connections_total_;
  std::shared_ptr<obs::Counter> frames_in_total_;
  std::shared_ptr<obs::Counter> frames_out_total_;
  std::shared_ptr<obs::Counter> bytes_in_total_;
  std::shared_ptr<obs::Counter> bytes_out_total_;
  std::shared_ptr<obs::Counter> decode_errors_total_;
  std::shared_ptr<obs::Counter> error_replies_total_;
  std::shared_ptr<obs::Counter> solves_total_;
  std::shared_ptr<obs::Counter> cancels_total_;
  std::shared_ptr<obs::Counter> backpressure_pauses_total_;
  std::shared_ptr<obs::Counter> disconnect_abandoned_total_;
  /// Reactor handle time per request op (decode → reply queued), indexed
  /// by Op request value (1..7).
  std::vector<std::shared_ptr<obs::Histogram>> op_handle_hist_;
  /// Solve admission → Result frame queued.
  std::shared_ptr<obs::Histogram> solve_turnaround_hist_;
  std::vector<obs::Registry::CallbackHandle> gauge_handles_;
};

}  // namespace gvc::net
