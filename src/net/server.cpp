#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.hpp"
#include "service/graph_hash.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace gvc::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

ErrorCode stream_error_code(const char* decoder_error) {
  if (std::strcmp(decoder_error, "frame-too-large") == 0)
    return ErrorCode::kFrameTooLarge;
  if (std::strcmp(decoder_error, "bad-version") == 0)
    return ErrorCode::kBadVersion;
  return ErrorCode::kBadFrame;
}

}  // namespace

void Server::CompletionBus::post(std::uint64_t conn_id,
                                 std::uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mutex);
  events.emplace_back(conn_id, request_id);
  if (wake_fd >= 0) {
    const char b = 0;
    // A full pipe means a wake is already pending — the event is queued
    // either way, so EAGAIN is success here.
    [[maybe_unused]] const ssize_t r = ::write(wake_fd, &b, 1);
  }
}

Server::Server(service::SolveService& service, ServerOptions options)
    : service_(service), options_(std::move(options)),
      bus_(std::make_shared<CompletionBus>()) {
  obs::Registry& reg = obs::Registry::global();
  connections_total_ =
      reg.counter("gvc_net_connections_total", "connections accepted");
  frames_in_total_ = reg.counter("gvc_net_frames_in_total",
                                 "complete frames received from clients");
  frames_out_total_ =
      reg.counter("gvc_net_frames_out_total", "frames queued to clients");
  bytes_in_total_ = reg.counter("gvc_net_bytes_in_total",
                                "bytes read from client sockets");
  bytes_out_total_ = reg.counter("gvc_net_bytes_out_total",
                                 "bytes written to client sockets");
  decode_errors_total_ =
      reg.counter("gvc_net_decode_errors_total",
                  "stream-fatal framing violations (connection dropped)");
  error_replies_total_ = reg.counter("gvc_net_error_replies_total",
                                     "kError frames sent (any scope)");
  solves_total_ =
      reg.counter("gvc_net_solves_total", "kSolve requests admitted");
  cancels_total_ =
      reg.counter("gvc_net_cancels_total", "kCancel requests that hit a "
                                           "live job");
  backpressure_pauses_total_ =
      reg.counter("gvc_net_backpressure_pauses_total",
                  "times a connection's reads were paused because its "
                  "write queue exceeded the bound");
  disconnect_abandoned_total_ =
      reg.counter("gvc_net_disconnect_abandoned_total",
                  "in-flight jobs abandoned because their connection "
                  "dropped");
  op_handle_hist_.resize(8);
  for (std::uint8_t op = 1; op <= 7; ++op) {
    op_handle_hist_[op] = reg.histogram(
        std::string("gvc_net_op_handle_seconds_") +
            op_name(static_cast<Op>(op)),
        "reactor handle time (frame decoded -> reply queued)");
  }
  solve_turnaround_hist_ =
      reg.histogram("gvc_net_solve_turnaround_seconds",
                    "solve admission -> Result frame queued");
  gauge_handles_.push_back(reg.gauge(
      "gvc_net_connections_open", "currently open client connections",
      [this] { return static_cast<double>(open_connections()); }));
  gauge_handles_.push_back(reg.gauge(
      "gvc_net_jobs_inflight",
      "jobs admitted over the wire and not yet answered",
      [this] { return static_cast<double>(jobs_inflight()); }));
  gauge_handles_.push_back(reg.gauge(
      "gvc_net_write_queue_bytes", "pending bytes across all write queues",
      [this] {
        return static_cast<double>(
            pending_out_bytes_.load(std::memory_order_relaxed));
      }));
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    const int wfd = wake_write_fd_.exchange(-1, std::memory_order_acq_rel);
    if (wfd >= 0) ::close(wfd);
    listen_fd_ = wake_read_fd_ = -1;
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "already running";
    return false;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return fail("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_.store(pipe_fds[1], std::memory_order_release);
  if (!set_nonblocking(pipe_fds[0]) || !set_nonblocking(pipe_fds[1]))
    return fail("fcntl(wake)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    errno = EINVAL;
    return fail("inet_pton(" + options_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    return fail("bind");
  if (::listen(listen_fd_, options_.listen_backlog) != 0)
    return fail("listen");
  if (!set_nonblocking(listen_fd_)) return fail("fcntl(listen)");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    return fail("getsockname");
  port_ = static_cast<int>(ntohs(bound.sin_port));

  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    bus_->wake_fd = wake_write_fd_.load(std::memory_order_acquire);
  }
  running_.store(true, std::memory_order_release);
  reactor_ = std::thread([this] { reactor_loop(); });
  return true;
}

void Server::begin_shutdown() {
  admission_closed_.store(true, std::memory_order_release);
  // Async-signal-safe wake (one atomic load + one write on a pre-opened
  // fd) so the reactor notices promptly even when idle in poll().
  const int fd = wake_write_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char b = 0;
    [[maybe_unused]] const ssize_t r = ::write(fd, &b, 1);
  }
}

void Server::stop(double drain_timeout_s) {
  if (!reactor_.joinable()) return;
  begin_shutdown();

  // Drain: jobs still in flight keep completing on worker threads and the
  // reactor keeps shipping their Result frames; leave when everything is
  // answered AND flushed, or the timeout expires.
  const double deadline = service::service_now_s() + drain_timeout_s;
  while (service::service_now_s() < deadline) {
    if (jobs_inflight() == 0 &&
        pending_out_bytes_.load(std::memory_order_relaxed) == 0)
      break;
    ::usleep(2000);
  }

  running_.store(false, std::memory_order_release);
  wake();
  reactor_.join();

  // Detach the bus AND the signal-handler fd BEFORE closing the pipe: a
  // worker-thread waiter firing right now holds the bus mutex while it
  // checks wake_fd, and a SIGINT landing right now loads wake_write_fd_ in
  // begin_shutdown() — after these two detaches neither can write into a
  // closed (possibly kernel-reused) descriptor.
  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    bus_->wake_fd = -1;
  }
  const int wfd = wake_write_fd_.exchange(-1, std::memory_order_acq_rel);
  ::close(wake_read_fd_);
  if (wfd >= 0) ::close(wfd);
  ::close(listen_fd_);
  wake_read_fd_ = listen_fd_ = -1;
}

void Server::wake() {
  const int fd = wake_write_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char b = 0;
    [[maybe_unused]] const ssize_t r = ::write(fd, &b, 1);
  }
}

void Server::reactor_loop() {
  obs::set_thread_label("net-reactor");
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;

  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    ids.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn->read_paused) events |= POLLIN;
      if (conn->pending_out() > 0) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      ids.push_back(id);
    }

    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), 500) < 0) {
      if (errno == EINTR) continue;
      GVC_LOG_ERROR("net: poll failed: %s", std::strerror(errno));
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) accept_ready();

    for (std::size_t i = 0; i < ids.size(); ++i) {
      auto it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      Connection& c = *it->second;
      const short re = fds[i + 2].revents;
      if (!c.dead && (re & (POLLIN | POLLERR | POLLHUP)) != 0) read_ready(c);
      if (!c.dead && (re & POLLOUT) != 0) write_ready(c);
    }

    drain_completions();

    // Opportunistic flush: frames queued during this iteration usually fit
    // the socket buffer, so ship them now instead of waiting one poll
    // cycle for POLLOUT.
    for (auto& [id, conn] : conns_)
      if (!conn->dead && conn->pending_out() > 0) write_ready(*conn);

    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->dead)
        it = conns_.erase(it);
      else
        ++it;
    }
  }

  // Teardown: abandon whatever is still connected. close_connection cancels
  // the jobs; their waiters will post onto the (soon-detached) bus, which
  // is by design inert after stop().
  for (auto& [id, conn] : conns_)
    if (!conn->dead) close_connection(*conn);
  conns_.clear();
}

void Server::accept_ready() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &peer_len, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GVC_LOG_WARN("net: accept failed: %s", std::strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>(options_.max_frame_bytes);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    const std::uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    connections_total_->add();
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    obs::trace_instant(obs::TraceCat::kNet, "net.accept", "conn",
                       static_cast<std::int64_t>(id));
  }
}

void Server::read_ready(Connection& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_total_->add(static_cast<std::uint64_t>(n));
      c.decoder.feed(buf, static_cast<std::size_t>(n));
      Frame f;
      for (;;) {
        const FrameDecoder::Next next = c.decoder.next(&f);
        if (next == FrameDecoder::Next::kFrame) {
          // Last-resort containment: an exception escaping a handler (e.g.
          // an allocation failure on a pathological request) costs this
          // connection, not the whole daemon — the reactor thread has no
          // other catch and would std::terminate.
          try {
            handle_frame(c, f);
          } catch (const std::exception& e) {
            GVC_LOG_ERROR("net: handler exception on conn %llu: %s",
                          static_cast<unsigned long long>(c.id), e.what());
            close_connection(c);
          }
          if (c.dead) return;
          continue;
        }
        if (next == FrameDecoder::Next::kError) {
          decode_errors_total_->add();
          send_error(c, 0, stream_error_code(c.decoder.error()),
                     c.decoder.error());
          // Best-effort delivery of the diagnostic, then drop: the stream
          // position is untrustworthy from here on.
          write_ready(c);
          close_connection(c);
          return;
        }
        break;  // kNeedMore
      }
      if (c.read_paused) return;  // backpressure engaged mid-batch
      continue;
    }
    if (n == 0) {  // orderly EOF
      close_connection(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(c);
    return;
  }
}

void Server::write_ready(Connection& c) {
  while (c.pending_out() > 0) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_pos, c.pending_out(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      bytes_out_total_->add(static_cast<std::uint64_t>(n));
      pending_out_bytes_.fetch_sub(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(c);
    return;
  }
  if (c.out_pos == c.out.size()) {
    c.out.clear();
    c.out_pos = 0;
  } else if (c.out_pos > 0 && c.out_pos * 2 >= c.out.size()) {
    c.out.erase(c.out.begin(), c.out.begin() +
                                   static_cast<std::ptrdiff_t>(c.out_pos));
    c.out_pos = 0;
  }
  update_backpressure(c);
}

void Server::send_frame(Connection& c, Op op, std::uint64_t request_id,
                        const std::vector<std::uint8_t>& payload) {
  const std::size_t before = c.out.size();
  if (!encode_frame(c.out, static_cast<std::uint8_t>(op), request_id,
                    payload)) {
    // Unreachable for server-built payloads (all far below 4 GiB), but a
    // desynced stream is never an acceptable fallback.
    GVC_LOG_ERROR("net: reply payload exceeds frame length field (conn %llu)",
                  static_cast<unsigned long long>(c.id));
    close_connection(c);
    return;
  }
  pending_out_bytes_.fetch_add(c.out.size() - before,
                               std::memory_order_relaxed);
  frames_out_total_->add();
  update_backpressure(c);
}

void Server::send_error(Connection& c, std::uint64_t request_id,
                        ErrorCode code, const std::string& message) {
  std::vector<std::uint8_t> payload;
  encode_error(payload, ErrorMsg{code, message});
  send_frame(c, Op::kError, request_id, payload);
  error_replies_total_->add();
}

void Server::update_backpressure(Connection& c) {
  if (!c.read_paused && c.pending_out() > options_.max_write_queue_bytes) {
    c.read_paused = true;
    backpressure_pauses_total_->add();
    obs::trace_instant(obs::TraceCat::kNet, "net.pause", "conn",
                       static_cast<std::int64_t>(c.id));
  } else if (c.read_paused &&
             c.pending_out() <= options_.max_write_queue_bytes / 2) {
    c.read_paused = false;
  }
}

void Server::handle_frame(Connection& c, const Frame& f) {
  frames_in_total_->add();
  const std::uint64_t t0 = util::now_ns();
  obs::TraceSpanSampled span(obs::TraceCat::kNet, "net.request", "op",
                             static_cast<std::int64_t>(f.opcode));

  if (!is_request_op(f.opcode)) {
    send_error(c, f.request_id, ErrorCode::kBadOpcode,
               "unknown or reply-direction opcode");
    return;
  }
  switch (static_cast<Op>(f.opcode)) {
    case Op::kPing:
      // Payload is echoed back — lets clients measure RTT at any size.
      send_frame(c, Op::kPong, f.request_id, f.payload);
      break;
    case Op::kUploadGraph:
      handle_upload(c, f);
      break;
    case Op::kSolve:
      handle_solve(c, f);
      break;
    case Op::kCancel:
      handle_cancel(c, f);
      break;
    case Op::kPoll:
      handle_poll(c, f);
      break;
    case Op::kStats: {
      std::vector<std::uint8_t> payload;
      encode_stats_reply(payload, obs::Registry::global().json_text());
      send_frame(c, Op::kStatsReply, f.request_id, payload);
      break;
    }
    case Op::kShutdown:
      if (!options_.allow_remote_shutdown) {
        send_error(c, f.request_id, ErrorCode::kNotAllowed,
                   "remote shutdown disabled");
      } else {
        send_frame(c, Op::kShutdownAck, f.request_id, {});
        admission_closed_.store(true, std::memory_order_release);
      }
      break;
    default:
      send_error(c, f.request_id, ErrorCode::kBadOpcode, "unhandled opcode");
      break;
  }
  if (f.opcode < op_handle_hist_.size() &&
      op_handle_hist_[f.opcode] != nullptr)
    op_handle_hist_[f.opcode]->observe_ns(util::now_ns() - t0);
}

void Server::handle_upload(Connection& c, const Frame& f) {
  if (c.graphs.size() >= options_.max_graphs_per_connection) {
    send_error(c, f.request_id, ErrorCode::kNotAllowed,
               "per-connection graph limit reached");
    return;
  }
  // Byte budgets, checked on the wire size before any decode work: the
  // graph count cap alone would still let every connection pin
  // max_graphs * max_frame_bytes of CSR data.
  if (c.graph_bytes + f.payload.size() >
      options_.max_graph_bytes_per_connection) {
    send_error(c, f.request_id, ErrorCode::kNotAllowed,
               "per-connection graph byte budget exceeded");
    return;
  }
  if (graph_bytes_total_ + f.payload.size() >
      options_.max_graph_bytes_total) {
    send_error(c, f.request_id, ErrorCode::kNotAllowed,
               "server graph byte budget exceeded");
    return;
  }
  std::uint64_t graph_id = 0;
  auto g = std::make_shared<graph::CsrGraph>();
  std::string why;
  if (!decode_upload_graph(f.payload, &graph_id, g.get(), &why)) {
    send_error(c, f.request_id, ErrorCode::kBadGraph, why);
    return;
  }
  if (!c.graphs.emplace(graph_id, g).second) {
    send_error(c, f.request_id, ErrorCode::kDuplicateId,
               "graph id already registered on this connection");
    return;
  }
  c.graph_bytes += f.payload.size();
  graph_bytes_total_ += f.payload.size();
  GraphAckMsg ack;
  ack.graph_id = graph_id;
  ack.canonical_hash = service::canonical_graph_hash(*g);
  ack.num_vertices = static_cast<std::uint32_t>(g->num_vertices());
  ack.num_edges = g->adjacency().size() / 2;
  std::vector<std::uint8_t> payload;
  encode_graph_ack(payload, ack);
  send_frame(c, Op::kGraphAck, f.request_id, payload);
}

void Server::handle_solve(Connection& c, const Frame& f) {
  if (admission_closed_.load(std::memory_order_acquire)) {
    send_error(c, f.request_id, ErrorCode::kShuttingDown,
               "daemon is draining");
    return;
  }
  if (c.jobs.count(f.request_id) != 0) {
    send_error(c, f.request_id, ErrorCode::kDuplicateId,
               "request id already in flight on this connection");
    return;
  }
  SolveRequestMsg msg;
  if (!decode_solve_request(f.payload, &msg)) {
    send_error(c, f.request_id, ErrorCode::kBadPayload,
               "malformed solve request");
    return;
  }

  std::shared_ptr<const graph::CsrGraph> g;
  if (msg.by_name) {
    if (options_.instance_resolver) g = options_.instance_resolver(msg.instance);
    if (g == nullptr) {
      send_error(c, f.request_id, ErrorCode::kUnknownInstance, msg.instance);
      return;
    }
  } else {
    const auto it = c.graphs.find(msg.graph_id);
    if (it == c.graphs.end()) {
      send_error(c, f.request_id, ErrorCode::kUnknownGraph,
                 "graph id not uploaded on this connection");
      return;
    }
    g = it->second;
  }

  service::JobSpec spec;
  spec.graph = std::move(g);
  spec.method = msg.method;
  spec.config = msg.config;
  spec.limits = msg.limits;
  spec.priority = msg.priority;
  spec.deadline_s = msg.deadline_s;
  service::JobTicket ticket = service_.submit(std::move(spec));
  solves_total_->add();

  AcceptedMsg accepted;
  accepted.job_id = ticket.id();
  accepted.cache_hit = ticket.cache_hit;
  accepted.coalesced = ticket.coalesced;
  accepted.rejected =
      ticket.state->status() == service::JobStatus::kRejected;
  std::vector<std::uint8_t> payload;
  encode_accepted(payload, accepted);
  send_frame(c, Op::kAccepted, f.request_id, payload);

  auto state = ticket.state;
  c.jobs.emplace(f.request_id,
                 PendingJob{std::move(ticket), service::service_now_s()});
  jobs_inflight_.fetch_add(1, std::memory_order_relaxed);

  // The bridge: fires on whatever thread performs the terminal transition
  // (a solve worker; the reactor itself for cache hits and rejections —
  // then the event is drained later this same iteration, keeping Accepted
  // before Result). Captures the bus by shared_ptr, never the server.
  const std::uint64_t conn_id = c.id;
  const std::uint64_t request_id = f.request_id;
  auto bus = bus_;
  state->add_waiter([bus = std::move(bus), conn_id, request_id] {
    bus->post(conn_id, request_id);
  });
}

void Server::handle_cancel(Connection& c, const Frame& f) {
  CancelMsg msg;
  if (!decode_cancel(f.payload, &msg)) {
    send_error(c, f.request_id, ErrorCode::kBadPayload,
               "malformed cancel request");
    return;
  }
  const auto it = c.jobs.find(msg.target_request_id);
  if (it == c.jobs.end()) {
    send_error(c, f.request_id, ErrorCode::kUnknownTicket,
               "no such in-flight request id (already answered?)");
    return;
  }
  CancelAckMsg ack;
  ack.hit = it->second.ticket.cancel();
  if (ack.hit) cancels_total_->add();
  std::vector<std::uint8_t> payload;
  encode_cancel_ack(payload, ack);
  send_frame(c, Op::kCancelAck, f.request_id, payload);
}

void Server::handle_poll(Connection& c, const Frame& f) {
  CancelMsg msg;  // same one-u64 payload shape: the target request id
  if (!decode_cancel(f.payload, &msg)) {
    send_error(c, f.request_id, ErrorCode::kBadPayload,
               "malformed poll request");
    return;
  }
  StatusReplyMsg reply;
  const auto it = c.jobs.find(msg.target_request_id);
  if (it != c.jobs.end()) {
    reply.known = true;
    reply.status = wire_job_status(
        static_cast<int>(it->second.ticket.state->status()));
  }
  std::vector<std::uint8_t> payload;
  encode_status_reply(payload, reply);
  send_frame(c, Op::kStatusReply, f.request_id, payload);
}

void Server::drain_completions() {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> events;
  {
    std::lock_guard<std::mutex> lock(bus_->mutex);
    events.swap(bus_->events);
  }
  for (const auto& [conn_id, request_id] : events) {
    const auto it = conns_.find(conn_id);
    // A completion for a closed connection is routine (disconnect already
    // accounted for the job); ignore it.
    if (it == conns_.end() || it->second->dead) continue;
    deliver_result(*it->second, request_id);
  }
}

void Server::deliver_result(Connection& c, std::uint64_t request_id) {
  const auto it = c.jobs.find(request_id);
  if (it == c.jobs.end()) return;
  const PendingJob& job = it->second;
  const auto& state = *job.ticket.state;

  ResultMsg msg;
  msg.status = wire_job_status(static_cast<int>(state.status()));
  const parallel::ParallelResult& r = state.result();
  msg.outcome = r.outcome;
  msg.best_size = r.best_size;
  msg.cover = r.cover;
  msg.tree_nodes = r.tree_nodes;
  msg.seconds = r.seconds;
  msg.sim_seconds = r.sim_seconds;
  msg.greedy_upper_bound = r.greedy_upper_bound;
  std::vector<std::uint8_t> payload;
  encode_result(payload, msg);
  send_frame(c, Op::kResult, request_id, payload);

  solve_turnaround_hist_->observe_seconds(service::service_now_s() -
                                          job.accept_s);
  c.jobs.erase(it);
  jobs_inflight_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::close_connection(Connection& c) {
  if (c.dead) return;
  c.dead = true;
  obs::trace_instant(obs::TraceCat::kNet, "net.close", "conn",
                     static_cast<std::int64_t>(c.id));

  // Abandonment: cancel every job this connection owns. Coalesced tickets
  // share another submission's JobState — other connections (or in-process
  // callers) may be waiting on that solve, so those are merely released.
  std::uint64_t abandoned = 0;
  for (auto& [request_id, job] : c.jobs) {
    ++abandoned;
    if (!job.ticket.coalesced && !job.ticket.cache_hit) job.ticket.cancel();
  }
  if (abandoned > 0) {
    disconnect_abandoned_total_->add(abandoned);
    jobs_inflight_.fetch_sub(abandoned, std::memory_order_relaxed);
  }
  c.jobs.clear();
  c.graphs.clear();
  graph_bytes_total_ -= c.graph_bytes;
  c.graph_bytes = 0;

  pending_out_bytes_.fetch_sub(c.pending_out(), std::memory_order_relaxed);
  c.out.clear();
  c.out_pos = 0;
  ::close(c.fd);
  c.fd = -1;
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace gvc::net
