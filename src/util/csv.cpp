#include "util/csv.hpp"

#include "util/check.hpp"

namespace gvc::util {

void CsvWriter::header(const std::vector<std::string>& cols) {
  GVC_CHECK_MSG(!header_written_, "CSV header already written");
  GVC_CHECK(!cols.empty());
  cols_ = cols.size();
  header_written_ = true;
  emit(cols);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  GVC_CHECK_MSG(header_written_, "CSV row before header");
  GVC_CHECK_MSG(cells.size() == cols_, "CSV row arity mismatch");
  emit(cells);
  ++rows_;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::quote(const std::string& cell) {
  bool needs = false;
  for (char c : cell)
    if (c == ',' || c == '"' || c == '\n' || c == '\r') { needs = true; break; }
  if (!needs) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace gvc::util
