#pragma once

// Small string helpers shared by the IO parsers and the CLI.

#include <string>
#include <string_view>
#include <vector>

namespace gvc::util {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale-independent).
std::string to_lower(std::string_view s);

/// Parse an integer; returns false (and leaves out untouched) on any
/// non-numeric trailing garbage or overflow.
bool parse_int(std::string_view s, long long& out);
bool parse_double(std::string_view s, double& out);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-width human formatting of seconds, e.g. "1.234", "0.001", ">2 hrs".
std::string format_seconds(double s);

}  // namespace gvc::util
