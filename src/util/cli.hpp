#pragma once

// Tiny command-line parser for the examples and bench binaries.
// Supports --flag, --key=value, and --key value forms.

#include <map>
#include <string>
#include <vector>

namespace gvc::util {

class Args {
 public:
  /// Parses argv. Unknown arguments are collected as positionals.
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Value lookups with defaults. Aborts (GVC_CHECK) on malformed numbers so
  /// typos fail loudly instead of silently benchmarking the wrong config.
  std::string get(const std::string& key, const std::string& def = "") const;
  long long get_int(const std::string& key, long long def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace gvc::util
