#pragma once

// Summary statistics used by the benchmark harness: geometric means for the
// speedup tables (Table II), quantiles for the load-distribution figure
// (Fig. 5), and plain moments.

#include <cstddef>
#include <vector>

namespace gvc::util {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Geometric mean; requires every sample > 0. 0 for an empty input.
/// This is the aggregation the paper uses for all speedup tables.
double geomean(const std::vector<double>& xs);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0,1]. Input need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Box-plot style five-number summary plus mean, as plotted in Fig. 5.
struct Distribution {
  double min = 0, p25 = 0, median = 0, p75 = 0, max = 0, mean = 0;
};

Distribution summarize(const std::vector<double>& xs);

/// Coefficient of variation (stddev / mean); a scalar imbalance measure.
double coeff_of_variation(const std::vector<double>& xs);

}  // namespace gvc::util
