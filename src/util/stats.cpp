#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gvc::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    GVC_CHECK_MSG(x > 0.0, "geomean requires positive samples");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double min_of(const std::vector<double>& xs) {
  GVC_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  GVC_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  GVC_CHECK(!xs.empty());
  GVC_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Distribution summarize(const std::vector<double>& xs) {
  Distribution d;
  if (xs.empty()) return d;
  d.min = min_of(xs);
  d.p25 = quantile(xs, 0.25);
  d.median = quantile(xs, 0.50);
  d.p75 = quantile(xs, 0.75);
  d.max = max_of(xs);
  d.mean = mean(xs);
  return d;
}

double coeff_of_variation(const std::vector<double>& xs) {
  double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

}  // namespace gvc::util
