#pragma once

// Minimal leveled logger. Thread-safe line-at-a-time output to stderr.

#include <string>

#include "util/strings.hpp"  // for gvc::util::format used by the macros

namespace gvc::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core emit; prefer the GVC_LOG_* macros which skip formatting when the
/// level is disabled.
void log_message(LogLevel level, const std::string& msg);

}  // namespace gvc::util

#define GVC_LOG_AT(level, ...)                                       \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::gvc::util::log_level()))                  \
      ::gvc::util::log_message(level, ::gvc::util::format(__VA_ARGS__)); \
  } while (0)

#define GVC_LOG_DEBUG(...) GVC_LOG_AT(::gvc::util::LogLevel::kDebug, __VA_ARGS__)
#define GVC_LOG_INFO(...)  GVC_LOG_AT(::gvc::util::LogLevel::kInfo, __VA_ARGS__)
#define GVC_LOG_WARN(...)  GVC_LOG_AT(::gvc::util::LogLevel::kWarn, __VA_ARGS__)
#define GVC_LOG_ERROR(...) GVC_LOG_AT(::gvc::util::LogLevel::kError, __VA_ARGS__)
