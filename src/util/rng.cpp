#include "util/rng.hpp"

#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace gvc::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  next();
  state_ += seed;
  next();
}

std::uint32_t Pcg32::next() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::below(std::uint32_t bound) {
  GVC_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    std::uint32_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Pcg32::range(std::int64_t lo, std::int64_t hi) {
  GVC_CHECK(lo <= hi);
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit span: combine two draws
    std::uint64_t v = (static_cast<std::uint64_t>(next()) << 32) | next();
    return static_cast<std::int64_t>(v);
  }
  if (span <= 0xffffffffULL)
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint32_t>(span)));
  // span > 2^32: draw 64 bits and reject over the largest multiple.
  std::uint64_t limit = (~0ULL / span) * span;
  for (;;) {
    std::uint64_t v = (static_cast<std::uint64_t>(next()) << 32) | next();
    if (v < limit) return lo + static_cast<std::int64_t>(v % span);
  }
}

double Pcg32::real() {
  return static_cast<double>(next()) * 0x1.0p-32;
}

bool Pcg32::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

std::uint64_t Pcg32::geometric_skip(double p) {
  GVC_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = real();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-32;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

void shuffle(std::vector<int>& v, Pcg32& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.below(static_cast<std::uint32_t>(i));
    std::swap(v[i - 1], v[j]);
  }
}

std::vector<int> sample_without_replacement(int n, int k, Pcg32& rng) {
  GVC_CHECK(0 <= k && k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::unordered_set<int> chosen;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int j = n - k; j < n; ++j) {
    int t = static_cast<int>(rng.below(static_cast<std::uint32_t>(j + 1)));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace gvc::util
