#include "util/timer.hpp"

#include <ctime>

namespace gvc::util {

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

const char* activity_name(Activity a) {
  switch (a) {
    case Activity::kWorklistAdd:           return "Add to worklist";
    case Activity::kWorklistRemove:        return "Remove from worklist";
    case Activity::kStackPush:             return "Push to stack";
    case Activity::kStackPop:              return "Pop from stack";
    case Activity::kTerminate:             return "Terminate";
    case Activity::kDegreeOneRule:         return "Degree-one rule";
    case Activity::kDegreeTwoTriangleRule: return "Degree-two-triangle rule";
    case Activity::kHighDegreeRule:        return "High-degree rule";
    case Activity::kFindMaxDegree:         return "Find max degree vertex";
    case Activity::kRemoveMaxVertex:       return "Remove max-degree vertex";
    case Activity::kRemoveNeighbors:       return "Remove neighbors of max-degree vertex";
    case Activity::kCount:                 break;
  }
  return "?";
}

std::uint64_t ActivityAccumulator::total_ns() const {
  std::uint64_t sum = 0;
  for (auto v : ns_) sum += v;
  return sum;
}

void ActivityAccumulator::merge(const ActivityAccumulator& other) {
  for (int i = 0; i < kNumActivities; ++i) ns_[i] += other.ns_[i];
}

}  // namespace gvc::util
