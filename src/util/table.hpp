#pragma once

// Console table renderer used by the benchmark harness to print rows in the
// same layout as the paper's tables.

#include <string>
#include <vector>

namespace gvc::util {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Accumulates rows, then renders a padded ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns,
                 std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator line before the next row.
  void add_separator();

  /// Render with single-space-padded columns and a header rule.
  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> columns_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace gvc::util
