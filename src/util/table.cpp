#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace gvc::util {

Table::Table(std::vector<std::string> columns, std::vector<Align> aligns)
    : columns_(std::move(columns)), aligns_(std::move(aligns)) {
  GVC_CHECK(!columns_.empty());
  if (aligns_.empty()) aligns_.assign(columns_.size(), Align::kLeft);
  GVC_CHECK(aligns_.size() == columns_.size());
}

void Table::add_row(std::vector<std::string> cells) {
  GVC_CHECK_MSG(cells.size() == columns_.size(), "table row arity mismatch");
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    std::size_t fill = width[c] - s.size();
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "  ";
    os << pad(columns_[c], c);
  }
  os << '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';

  for (const Row& r : rows_) {
    if (r.separator) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      if (c) os << "  ";
      os << pad(r.cells[c], c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace gvc::util
