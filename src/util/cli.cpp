#include "util/cli.hpp"

#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      kv_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      kv_[body] = argv[++i];
    } else {
      kv_[body] = "true";  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

long long Args::get_int(const std::string& key, long long def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  long long v = 0;
  GVC_CHECK_MSG(parse_int(it->second, v), "malformed integer CLI value");
  return v;
}

double Args::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  double v = 0;
  GVC_CHECK_MSG(parse_double(it->second, v), "malformed float CLI value");
  return v;
}

bool Args::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::string v = to_lower(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  GVC_CHECK_MSG(false, "malformed boolean CLI value");
  return def;
}

}  // namespace gvc::util
