#pragma once

// CSV emission for benchmark results. Every bench binary can mirror its
// console table into a machine-readable CSV so figures can be re-plotted.

#include <ostream>
#include <string>
#include <vector>

namespace gvc::util {

/// Row-at-a-time CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Writes to an externally owned stream (must outlive the writer).
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Emit the header row. Must be called before any data row.
  void header(const std::vector<std::string>& cols);

  /// Emit one data row; arity must match the header.
  void row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void emit(const std::vector<std::string>& cells);
  static std::string quote(const std::string& cell);

  std::ostream& out_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

}  // namespace gvc::util
