#pragma once

// Wall-clock timing and per-activity cycle accounting.
//
// ActivityAccumulator mirrors how the paper instruments its kernels (§V-D):
// each thread block records, per activity, the number of "SM clock" cycles
// spent; breakdowns are normalized per block then averaged. Here the clock is
// std::chrono::steady_clock in nanoseconds, which plays the role of the SM
// cycle counter.

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace gvc::util {

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic nanosecond timestamp (wall clock).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds of CPU time consumed by the calling thread. This is the
/// substrate's "SM clock": it charges a thread block only for work it
/// actually executed, so measurements are immune to host oversubscription
/// (a descheduled block accrues nothing, exactly like an idle SM).
std::uint64_t thread_cpu_ns();

/// Activities instrumented in the MVC/PVC kernels, matching Fig. 6 of the
/// paper: three work-distribution groups, three reduction rules, and three
/// branching steps, plus termination waiting.
enum class Activity : int {
  kWorklistAdd = 0,
  kWorklistRemove,
  kStackPush,
  kStackPop,
  kTerminate,
  kDegreeOneRule,
  kDegreeTwoTriangleRule,
  kHighDegreeRule,
  kFindMaxDegree,
  kRemoveMaxVertex,
  kRemoveNeighbors,
  kCount
};

inline constexpr int kNumActivities = static_cast<int>(Activity::kCount);

/// Human-readable label for an activity (as printed in Fig. 6's legend).
const char* activity_name(Activity a);

/// Per-block accumulator of nanoseconds spent in each activity.
/// Not thread-safe: each block owns one.
class ActivityAccumulator {
 public:
  ActivityAccumulator() { ns_.fill(0); }

  void add(Activity a, std::uint64_t ns) { ns_[static_cast<int>(a)] += ns; }

  std::uint64_t ns(Activity a) const { return ns_[static_cast<int>(a)]; }

  /// Sum over all activities.
  std::uint64_t total_ns() const;

  /// Element-wise merge of another accumulator into this one.
  void merge(const ActivityAccumulator& other);

 private:
  std::array<std::uint64_t, kNumActivities> ns_;
};

/// RAII scope that charges the calling thread's CPU time over its lifetime
/// to one activity of an accumulator (see thread_cpu_ns for why CPU time).
class ActivityScope {
 public:
  ActivityScope(ActivityAccumulator& acc, Activity a)
      : acc_(acc), activity_(a), start_(thread_cpu_ns()) {}
  ~ActivityScope() { acc_.add(activity_, thread_cpu_ns() - start_); }

  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;

 private:
  ActivityAccumulator& acc_;
  Activity activity_;
  std::uint64_t start_;
};

}  // namespace gvc::util
