#pragma once

// Lightweight precondition / invariant checking.
//
// GVC_CHECK is always on (cheap, used for API misuse that would otherwise
// corrupt state); GVC_DCHECK compiles out in NDEBUG builds and is used on
// hot paths.

#include <cstdio>
#include <cstdlib>

namespace gvc::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "GVC_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg && *msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace gvc::util

#define GVC_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::gvc::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define GVC_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::gvc::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define GVC_DCHECK(expr) ((void)0)
#else
#define GVC_DCHECK(expr) GVC_CHECK(expr)
#endif
