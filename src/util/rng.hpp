#pragma once

// PCG32 pseudo-random generator plus sampling helpers.
//
// All graph generators and workload drivers in gvc take an explicit seed so
// every experiment is reproducible; std::mt19937 is avoided because its
// stream is not specified to be identical across standard library
// implementations for the distribution adaptors, whereas everything here is
// fully self-contained.

#include <cstdint>
#include <vector>

namespace gvc::util {

/// Melissa O'Neill's PCG-XSH-RR 64/32 generator: 64-bit state, 32-bit output.
/// Small, fast, and statistically solid for simulation workloads.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Next raw 32-bit value.
  std::uint32_t next();

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  std::uint32_t operator()() { return next(); }
  static constexpr std::uint32_t min() { return 0; }
  static constexpr std::uint32_t max() { return 0xffffffffu; }

  /// Unbiased integer in [0, bound). bound must be > 0.
  std::uint32_t below(std::uint32_t bound);

  /// Integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Real in [0, 1).
  double real();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Geometric "skip" count for Bernoulli(p) sampling: number of failures
  /// before the next success. Used by the G(n,p) generator to jump directly
  /// between edges instead of testing every pair. p must be in (0, 1].
  std::uint64_t geometric_skip(double p);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Fisher–Yates shuffle of v using rng.
void shuffle(std::vector<int>& v, Pcg32& rng);

/// k distinct integers sampled uniformly from [0, n), in arbitrary order.
/// Requires 0 <= k <= n. O(k) expected time via Floyd's algorithm.
std::vector<int> sample_without_replacement(int n, int k, Pcg32& rng);

}  // namespace gvc::util
