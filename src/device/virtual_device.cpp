#include "device/virtual_device.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace gvc::device {

std::uint64_t LaunchStats::total_nodes() const {
  std::uint64_t sum = 0;
  for (const auto& b : blocks) sum += b.nodes_visited;
  return sum;
}

std::vector<double> LaunchStats::nodes_per_sm() const {
  std::vector<double> per_sm(static_cast<std::size_t>(num_sms), 0.0);
  for (const auto& b : blocks)
    per_sm[static_cast<std::size_t>(b.sm_id)] +=
        static_cast<double>(b.nodes_visited);
  return per_sm;
}

std::vector<double> LaunchStats::load_per_sm_normalized() const {
  auto per_sm = nodes_per_sm();
  double sum = 0;
  for (double x : per_sm) sum += x;
  double mean = num_sms > 0 ? sum / num_sms : 0.0;
  if (mean > 0)
    for (double& x : per_sm) x /= mean;
  return per_sm;
}

double LaunchStats::makespan_seconds() const {
  std::vector<double> busy(static_cast<std::size_t>(num_sms), 0.0);
  for (const auto& b : blocks)
    busy[static_cast<std::size_t>(b.sm_id)] +=
        static_cast<double>(b.cpu_ns) * 1e-9;
  double m = 0;
  for (double x : busy) m = std::max(m, x);
  return m;
}

util::ActivityAccumulator LaunchStats::merged_activities() const {
  util::ActivityAccumulator acc;
  for (const auto& b : blocks) acc.merge(b.activities);
  return acc;
}

std::vector<double> LaunchStats::mean_activity_fractions() const {
  std::vector<double> fractions(util::kNumActivities, 0.0);
  int counted = 0;
  for (const auto& b : blocks) {
    std::uint64_t total = b.activities.total_ns();
    if (total == 0) continue;
    ++counted;
    for (int a = 0; a < util::kNumActivities; ++a)
      fractions[static_cast<std::size_t>(a)] +=
          static_cast<double>(b.activities.ns(static_cast<util::Activity>(a))) /
          static_cast<double>(total);
  }
  if (counted > 0)
    for (double& f : fractions) f /= counted;
  return fractions;
}

VirtualDevice::VirtualDevice(DeviceSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

LaunchStats VirtualDevice::launch(
    int grid_size, bool cooperative,
    const std::function<void(BlockContext&)>& body, int resident) const {
  GVC_CHECK(grid_size > 0);
  LaunchStats stats;
  stats.num_sms = spec_.num_sms;
  stats.blocks.resize(static_cast<std::size_t>(grid_size));

  util::WallTimer timer;

  auto run_block = [&](int block_id, int sm_id, int slot_id) {
    BlockContext ctx(block_id, sm_id, slot_id);
    std::uint64_t start = util::thread_cpu_ns();
    body(ctx);
    ctx.mutable_stats().cpu_ns = util::thread_cpu_ns() - start;
    stats.blocks[static_cast<std::size_t>(block_id)] = ctx.mutable_stats();
  };

  if (cooperative) {
    // Persistent grid: every block resident simultaneously, assigned to SMs
    // round-robin (how a full-occupancy persistent launch lands on HW).
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(grid_size));
    for (int b = 0; b < grid_size; ++b)
      threads.emplace_back(run_block, b, b % spec_.num_sms, b);
    for (auto& t : threads) t.join();
  } else {
    // Pooled: `resident` slots drain the grid in block-id order. A slot is
    // pinned to an SM; each block it runs inherits that SM, matching the
    // free-slot dispatch of the hardware scheduler.
    if (resident <= 0)
      resident = static_cast<int>(std::min<std::int64_t>(
          spec_.max_resident_blocks(), grid_size));
    resident = std::min(resident, grid_size);
    std::atomic<int> next{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(resident));
    for (int slot = 0; slot < resident; ++slot) {
      threads.emplace_back([&, slot] {
        for (;;) {
          int b = next.fetch_add(1, std::memory_order_relaxed);
          if (b >= grid_size) return;
          run_block(b, slot % spec_.num_sms, slot);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  stats.wall_seconds = timer.seconds();
  return stats;
}

}  // namespace gvc::device
