#pragma once

// The block-size / kernel-variant selection procedure of §IV-E.
//
// Inputs: the device model, the graph size |V| (which fixes both the degree
// array footprint and the useful upper bound on threads per block), and the
// stack depth bound (greedy upper bound for MVC, k for PVC).
//
// Procedure (verbatim from the paper):
//   upper  = min(hw max threads/block, |V|)
//   blocks = min(hw resident blocks,
//                smem-limited blocks,        [shared-memory variant only]
//                global-memory stack-limited blocks)
//   lower  = ceil(full-occupancy threads / blocks)
//   if lower ≤ upper  → pick a power-of-two block size in [lower, upper],
//                        full occupancy achievable
//   else              → block size = upper, reduced occupancy; if the shared
//                        memory constraint caused it, fall back to the
//                        global-memory kernel variant.

#include <cstdint>
#include <string>

#include "device/device_spec.hpp"

namespace gvc::device {

enum class KernelVariant {
  kSharedMem,  ///< intermediate graph of the current node kept in shared mem
  kGlobalMem,  ///< intermediate graph kept in global memory
};

const char* kernel_variant_name(KernelVariant v);

struct LaunchPlan {
  KernelVariant variant = KernelVariant::kSharedMem;
  int block_size = 0;        ///< threads per block
  int grid_size = 0;         ///< resident blocks launched (persistent grid)
  bool full_occupancy = false;

  /// Diagnostics: the three block-count limits of §IV-E.
  std::int64_t hw_block_limit = 0;
  std::int64_t smem_block_limit = 0;    ///< INT64_MAX for the global variant
  std::int64_t global_mem_block_limit = 0;

  std::string to_string() const;
};

/// Bytes of one degree-array entry for a |V|-vertex graph (the unit of both
/// shared-memory and stack budgeting).
std::int64_t degree_array_bytes(std::int64_t num_vertices);

/// Runs the §IV-E procedure. If `force_block_size` is nonzero it is used
/// verbatim (the block-size ablation bench sweeps it) and only the grid
/// size / variant / occupancy flags are derived.
LaunchPlan plan_launch(const DeviceSpec& spec, std::int64_t num_vertices,
                       int stack_depth, int force_block_size = 0);

}  // namespace gvc::device
