#include "device/device_spec.hpp"

#include "util/check.hpp"

namespace gvc::device {

void DeviceSpec::validate() const {
  GVC_CHECK(num_sms > 0);
  GVC_CHECK(max_threads_per_block > 0);
  GVC_CHECK(max_threads_per_sm >= max_threads_per_block);
  GVC_CHECK(max_blocks_per_sm > 0);
  GVC_CHECK(shared_mem_per_sm_bytes > 0);
  GVC_CHECK(shared_mem_per_block_bytes > 0);
  GVC_CHECK(shared_mem_per_block_bytes <= shared_mem_per_sm_bytes);
  GVC_CHECK(global_mem_bytes > 0);
}

DeviceSpec DeviceSpec::v100() {
  DeviceSpec d;
  d.name = "Volta V100 (virtual)";
  d.num_sms = 80;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm_bytes = 96 * 1024;
  d.shared_mem_per_block_bytes = 96 * 1024;
  // 32 GiB card; budget 24 GiB for stacks after graph/worklist reserve.
  d.global_mem_bytes = 24LL * 1024 * 1024 * 1024;
  d.validate();
  return d;
}

DeviceSpec DeviceSpec::a100() {
  DeviceSpec d;
  d.name = "Ampere A100 (virtual)";
  d.num_sms = 108;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm_bytes = 164 * 1024;
  d.shared_mem_per_block_bytes = 164 * 1024;
  d.global_mem_bytes = 32LL * 1024 * 1024 * 1024;
  d.validate();
  return d;
}

DeviceSpec DeviceSpec::laptop() {
  DeviceSpec d;
  d.name = "Laptop-class (virtual)";
  d.num_sms = 8;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm_bytes = 64 * 1024;
  d.shared_mem_per_block_bytes = 48 * 1024;
  d.global_mem_bytes = 2LL * 1024 * 1024 * 1024;
  d.validate();
  return d;
}

DeviceSpec DeviceSpec::host_scaled() {
  DeviceSpec d;
  d.name = "V100/5 host-scaled (virtual)";
  d.num_sms = 16;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 2;
  d.shared_mem_per_sm_bytes = 96 * 1024;
  d.shared_mem_per_block_bytes = 96 * 1024;
  d.global_mem_bytes = 1LL * 1024 * 1024 * 1024;
  d.validate();
  return d;
}

}  // namespace gvc::device
