#pragma once

// Execution substrate: runs a grid of "thread blocks" (host threads) against
// the device model, reproducing the two scheduling regimes the paper's
// kernels rely on:
//
//  * cooperative launch — every block in the grid is resident and runs
//    concurrently for the whole kernel (the persistent-grid Hybrid kernel,
//    whose worklist termination protocol requires all blocks to
//    participate); and
//  * pooled launch — more blocks than resident slots; blocks are dispatched
//    to free slots in id order, exactly how a GPU scheduler drains a grid
//    (the StackOnly kernel with one block per sub-tree).
//
// Each block gets a BlockContext carrying its id, its SM assignment, a
// visited-node counter (the unit of Fig. 5) and an ActivityAccumulator (the
// unit of Fig. 6). LaunchStats aggregates them per SM.

#include <cstdint>
#include <functional>
#include <vector>

#include "device/device_spec.hpp"
#include "util/timer.hpp"

namespace gvc::device {

/// Instrumentation record of one executed block.
struct BlockStats {
  int block_id = -1;
  int sm_id = -1;
  std::uint64_t nodes_visited = 0;
  /// CPU nanoseconds the block's body consumed (thread CPU clock): the
  /// block's share of its SM's cycles, independent of host scheduling.
  std::uint64_t cpu_ns = 0;
  util::ActivityAccumulator activities;
};

/// Handed to the block body; the block's window onto its instrumentation.
class BlockContext {
 public:
  BlockContext(int block_id, int sm_id, int slot_id = -1)
      : slot_id_(slot_id < 0 ? block_id : slot_id), stats_() {
    stats_.block_id = block_id;
    stats_.sm_id = sm_id;
  }

  int block_id() const { return stats_.block_id; }
  int sm_id() const { return stats_.sm_id; }

  /// The resident slot executing this block: equal to block_id() under a
  /// cooperative launch (every block resident), the slot index in [0,
  /// resident) under a pooled launch. Bodies that pool per-*slot* scratch —
  /// the batch solver runs 10k+ blocks through ≤32 slots — key it on this,
  /// not on block_id(), so the pool stays resident-sized.
  int slot_id() const { return slot_id_; }

  /// Record one visited search-tree node.
  void count_node() { ++stats_.nodes_visited; }

  /// Bulk form for batched accounting (see NodeCounter).
  void count_nodes(std::uint64_t n) { stats_.nodes_visited += n; }

  std::uint64_t nodes_visited() const { return stats_.nodes_visited; }

  /// Per-activity cycle accounting (wrap work in util::ActivityScope).
  util::ActivityAccumulator& activities() { return stats_.activities; }

  BlockStats& mutable_stats() { return stats_; }

 private:
  int slot_id_;
  BlockStats stats_;
};

/// Batches BlockContext::count_node() the same way SharedSearch::NodeBatch
/// batches the shared limit counter: the solver hot loop ticks a local
/// accumulator and the total lands in BlockStats in one count_nodes() call
/// when the counter goes out of scope at block exit. On a GPU this is the
/// register-resident per-block counter flushed to the instrumentation
/// buffer once, instead of a global-memory increment per tree node.
/// BlockStats::nodes_visited is therefore exact only after the block body
/// has returned — which is when LaunchStats collects it.
class NodeCounter {
 public:
  explicit NodeCounter(BlockContext& ctx) : ctx_(&ctx) {}
  NodeCounter(const NodeCounter&) = delete;
  NodeCounter& operator=(const NodeCounter&) = delete;
  ~NodeCounter() { flush(); }

  /// Record one visited search-tree node (local increment only).
  void tick() { ++pending_; }

  /// Pushes the locally counted nodes into the block's stats.
  void flush() {
    if (pending_ > 0) {
      ctx_->count_nodes(pending_);
      pending_ = 0;
    }
  }

 private:
  BlockContext* ctx_;
  std::uint64_t pending_ = 0;
};

/// Aggregated results of one grid launch.
struct LaunchStats {
  int num_sms = 0;
  double wall_seconds = 0.0;
  std::vector<BlockStats> blocks;

  std::uint64_t total_nodes() const;

  /// Tree nodes visited per SM (length num_sms).
  std::vector<double> nodes_per_sm() const;

  /// Fig. 5's metric: per-SM node counts normalized to the across-SM mean.
  /// SMs that received no blocks contribute 0.
  std::vector<double> load_per_sm_normalized() const;

  /// Max over SMs of the summed CPU time of the blocks assigned to it —
  /// the simulated parallel execution time of the launch. This is the
  /// primary "GPU seconds" metric on this substrate: on a host with fewer
  /// cores than virtual SMs, wall time measures total work while this
  /// recovers the parallel shape (see DESIGN.md §2).
  double makespan_seconds() const;

  /// Sum of all blocks' activity accumulators.
  util::ActivityAccumulator merged_activities() const;

  /// Fig. 6's metric: for each activity, the mean over blocks of that
  /// block's fraction of instrumented time spent in the activity.
  /// Blocks with no instrumented time are skipped.
  std::vector<double> mean_activity_fractions() const;
};

class VirtualDevice {
 public:
  explicit VirtualDevice(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }

  /// Runs `body` for block ids [0, grid_size).
  ///
  /// cooperative=true: one thread per block, all concurrent (required when
  /// blocks synchronize through shared state, e.g. the global worklist
  /// termination protocol). cooperative=false: blocks are drained by
  /// `resident` worker slots in id order; `resident` defaults to the
  /// device's max resident blocks and is clamped to grid_size.
  LaunchStats launch(int grid_size, bool cooperative,
                     const std::function<void(BlockContext&)>& body,
                     int resident = 0) const;

 private:
  DeviceSpec spec_;
};

}  // namespace gvc::device
