#pragma once

// Description of the (virtual) GPU the solvers run on.
//
// The paper evaluates on a Volta V100; this substrate replaces the physical
// card with a resource model carrying exactly the limits §IV-E reasons
// about: SM count, thread/block limits, shared memory per SM and per block,
// and global memory. The occupancy calculator consumes this model, and the
// VirtualDevice executes grids against it.

#include <cstdint>
#include <string>

namespace gvc::device {

struct DeviceSpec {
  std::string name;

  /// Streaming multiprocessors.
  int num_sms = 0;

  /// Hardware limit on threads per block.
  int max_threads_per_block = 0;

  /// Max simultaneously resident threads per SM.
  int max_threads_per_sm = 0;

  /// Hardware limit on resident blocks per SM.
  int max_blocks_per_sm = 0;

  /// Shared memory capacity per SM.
  std::int64_t shared_mem_per_sm_bytes = 0;

  /// Shared memory limit for a single block (≤ per-SM capacity).
  std::int64_t shared_mem_per_block_bytes = 0;

  /// Device global memory available for per-block stacks (total memory
  /// minus a reserve for the CSR graph, worklist, and runtime).
  std::int64_t global_mem_bytes = 0;

  /// Max resident blocks device-wide (num_sms * max_blocks_per_sm).
  std::int64_t max_resident_blocks() const {
    return static_cast<std::int64_t>(num_sms) * max_blocks_per_sm;
  }

  /// Threads needed for 100% occupancy (num_sms * max_threads_per_sm).
  std::int64_t full_occupancy_threads() const {
    return static_cast<std::int64_t>(num_sms) * max_threads_per_sm;
  }

  /// Aborts if any field is inconsistent (non-positive, or per-block shared
  /// memory above per-SM capacity).
  void validate() const;

  // Presets. v100() mirrors the paper's evaluation card; the others exist
  // for the occupancy tests and for running on smaller virtual devices.
  static DeviceSpec v100();
  static DeviceSpec a100();
  /// A small integrated-GPU-class device; useful to observe occupancy
  /// limits kicking in at much smaller graph sizes.
  static DeviceSpec laptop();

  /// A V100 scaled down ~5x in SM count and residency so that a persistent
  /// grid maps onto a host's thread budget while preserving the per-SM
  /// ratios the load-balance experiments measure. This is the default
  /// device for benches run on this substrate (see DESIGN.md §2).
  static DeviceSpec host_scaled();
};

}  // namespace gvc::device
