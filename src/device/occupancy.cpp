#include "device/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::device {

namespace {

constexpr std::int64_t kUnlimited = std::numeric_limits<std::int64_t>::max();

/// Largest power of two ≤ x (x ≥ 1).
std::int64_t floor_pow2(std::int64_t x) {
  std::int64_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

struct VariantLimits {
  std::int64_t hw = 0;
  std::int64_t smem = 0;    // device-wide blocks under the smem constraint
  std::int64_t gmem = 0;
  std::int64_t combined() const { return std::min({hw, smem, gmem}); }
};

VariantLimits block_limits(const DeviceSpec& spec, KernelVariant variant,
                           std::int64_t entry_bytes, int stack_depth) {
  VariantLimits lim;
  lim.hw = spec.max_resident_blocks();
  if (variant == KernelVariant::kSharedMem) {
    if (entry_bytes > spec.shared_mem_per_block_bytes) {
      lim.smem = 0;  // a single block's intermediate graph does not fit
    } else {
      lim.smem = static_cast<std::int64_t>(spec.num_sms) *
                 (spec.shared_mem_per_sm_bytes / entry_bytes);
    }
  } else {
    lim.smem = kUnlimited;
  }
  std::int64_t stack_bytes = entry_bytes * std::max(stack_depth, 1);
  lim.gmem = spec.global_mem_bytes / stack_bytes;
  return lim;
}

/// Resident blocks per SM for a chosen block size under a variant.
std::int64_t blocks_per_sm(const DeviceSpec& spec, KernelVariant variant,
                           std::int64_t entry_bytes, int block_size) {
  std::int64_t by_threads = spec.max_threads_per_sm / block_size;
  std::int64_t by_hw = spec.max_blocks_per_sm;
  std::int64_t by_smem =
      variant == KernelVariant::kSharedMem
          ? (entry_bytes <= spec.shared_mem_per_block_bytes
                 ? spec.shared_mem_per_sm_bytes / entry_bytes
                 : 0)
          : kUnlimited;
  return std::min({by_threads, by_hw, by_smem});
}

LaunchPlan plan_variant(const DeviceSpec& spec, KernelVariant variant,
                        std::int64_t num_vertices, int stack_depth,
                        int force_block_size) {
  const std::int64_t entry = degree_array_bytes(num_vertices);
  LaunchPlan plan;
  plan.variant = variant;

  VariantLimits lim = block_limits(spec, variant, entry, stack_depth);
  plan.hw_block_limit = lim.hw;
  plan.smem_block_limit = lim.smem;
  plan.global_mem_block_limit = lim.gmem;

  if (lim.combined() <= 0) return plan;  // infeasible: block_size stays 0

  // Upper limit: hardware cap and |V| — more threads than vertices do no
  // useful work on a degree array (§IV-E).
  std::int64_t upper =
      std::min<std::int64_t>(spec.max_threads_per_block,
                             std::max<std::int64_t>(num_vertices, 1));
  // Lower limit: threads needed for full occupancy over the max block count.
  std::int64_t lower =
      (spec.full_occupancy_threads() + lim.combined() - 1) / lim.combined();

  std::int64_t block_size;
  if (force_block_size > 0) {
    block_size = force_block_size;
  } else if (lower <= upper) {
    // A power of two inside [lower, upper]; prefer the largest (fewer,
    // larger blocks — the regime the paper targets for big graphs).
    std::int64_t candidate = floor_pow2(upper);
    block_size = candidate >= lower ? candidate : upper;
  } else {
    block_size = upper;  // cannot reach full occupancy
  }
  block_size = std::min<std::int64_t>(block_size, spec.max_threads_per_block);

  std::int64_t per_sm = blocks_per_sm(spec, variant, entry, static_cast<int>(block_size));
  if (per_sm <= 0) return plan;
  std::int64_t grid = std::min(per_sm * spec.num_sms, lim.gmem);
  grid = std::min(grid, lim.hw);

  plan.block_size = static_cast<int>(block_size);
  plan.grid_size = static_cast<int>(std::min<std::int64_t>(
      grid, std::numeric_limits<int>::max()));
  plan.full_occupancy =
      per_sm * block_size >= spec.max_threads_per_sm &&
      grid == per_sm * spec.num_sms;
  return plan;
}

}  // namespace

const char* kernel_variant_name(KernelVariant v) {
  return v == KernelVariant::kSharedMem ? "shared-mem" : "global-mem";
}

std::string LaunchPlan::to_string() const {
  return util::format(
      "%s kernel, block=%d threads, grid=%d blocks, %s occupancy "
      "(limits: hw=%lld smem=%lld gmem=%lld)",
      kernel_variant_name(variant), block_size, grid_size,
      full_occupancy ? "full" : "reduced",
      static_cast<long long>(hw_block_limit),
      smem_block_limit == std::numeric_limits<std::int64_t>::max()
          ? -1LL
          : static_cast<long long>(smem_block_limit),
      static_cast<long long>(global_mem_block_limit));
}

std::int64_t degree_array_bytes(std::int64_t num_vertices) {
  // |V| 32-bit degrees plus the |S| and |E| counters.
  return num_vertices * 4 + 16;
}

LaunchPlan plan_launch(const DeviceSpec& spec, std::int64_t num_vertices,
                       int stack_depth, int force_block_size) {
  spec.validate();
  GVC_CHECK(num_vertices >= 0);
  GVC_CHECK(stack_depth >= 0);
  GVC_CHECK(force_block_size >= 0);
  GVC_CHECK_MSG(force_block_size <= spec.max_threads_per_block,
                "forced block size exceeds hardware limit");

  LaunchPlan shared = plan_variant(spec, KernelVariant::kSharedMem,
                                   num_vertices, stack_depth, force_block_size);
  if (shared.block_size > 0 && shared.full_occupancy) return shared;

  // §IV-E fallback: when the shared-memory constraint prevents full
  // occupancy, relax it by keeping the intermediate graph in global memory.
  LaunchPlan global = plan_variant(spec, KernelVariant::kGlobalMem,
                                   num_vertices, stack_depth, force_block_size);
  if (shared.block_size == 0) {
    GVC_CHECK_MSG(global.block_size > 0,
                  "graph too large for device global memory");
    return global;
  }
  if (global.full_occupancy || global.grid_size > shared.grid_size)
    return global;
  return shared;  // neither reaches full occupancy; prefer fast shared mem
}

}  // namespace gvc::device
