#include "parallel/shared_state.hpp"

#include "util/check.hpp"

namespace gvc::parallel {

SharedSearch::SharedSearch(vc::Problem problem, int k, int initial_best,
                           std::vector<graph::Vertex> initial_cover,
                           const vc::Limits& limits)
    : problem_(problem),
      k_(k),
      limits_(limits),
      best_(initial_best),
      best_cover_(std::move(initial_cover)) {
  GVC_CHECK(problem_ == vc::Problem::kMvc || k_ > 0);
  GVC_CHECK(initial_best >= 0);
  GVC_CHECK(static_cast<int>(best_cover_.size()) == initial_best);
}

bool SharedSearch::offer_cover(const vc::DegreeArray& da) {
  int size = da.solution_size();
  int cur = best_.load(std::memory_order_acquire);
  while (size < cur) {
    if (best_.compare_exchange_weak(cur, size, std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(mutex_);
      // Another improver may have raced us with an even smaller cover;
      // only materialize ours if it still matches the atomic.
      if (best_.load(std::memory_order_acquire) == size)
        best_cover_ = da.solution();
      return true;
    }
  }
  return false;
}

void SharedSearch::set_pvc_found(const vc::DegreeArray& da) {
  bool expected = false;
  if (pvc_found_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    pvc_cover_ = da.solution();
  }
}

bool SharedSearch::register_node() {
  std::uint64_t n = nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (limits_.max_tree_nodes != 0 && n > limits_.max_tree_nodes) {
    aborted_.store(true, std::memory_order_release);
    return false;
  }
  // Clock reads are cheap (vDSO) but still amortized across nodes.
  if (limits_.time_limit_s != 0.0 && (n & 63) == 0 &&
      timer_.seconds() > limits_.time_limit_s) {
    aborted_.store(true, std::memory_order_release);
    return false;
  }
  return !aborted_.load(std::memory_order_acquire);
}

bool SharedSearch::check_time_limit() {
  if (limits_.time_limit_s != 0.0 && timer_.seconds() > limits_.time_limit_s) {
    aborted_.store(true, std::memory_order_release);
    return false;
  }
  return !aborted_.load(std::memory_order_acquire);
}

bool SharedSearch::register_nodes(std::uint64_t count) {
  if (count == 0) return !aborted_.load(std::memory_order_acquire);
  std::uint64_t n = nodes_.fetch_add(count, std::memory_order_relaxed) + count;
  if (limits_.max_tree_nodes != 0 && n > limits_.max_tree_nodes) {
    aborted_.store(true, std::memory_order_release);
    return false;
  }
  // Every bulk flush checks the clock — flushes are already amortized.
  if (limits_.time_limit_s != 0.0 && timer_.seconds() > limits_.time_limit_s) {
    aborted_.store(true, std::memory_order_release);
    return false;
  }
  return !aborted_.load(std::memory_order_acquire);
}

vc::SolveResult SharedSearch::harvest() const {
  vc::SolveResult r;
  r.tree_nodes = nodes();
  r.timed_out = aborted();
  std::lock_guard<std::mutex> lock(mutex_);
  if (problem_ == vc::Problem::kMvc) {
    r.found = true;
    r.best_size = best_.load(std::memory_order_acquire);
    r.cover = best_cover_;
  } else {
    r.found = pvc_found();
    if (r.found) {
      r.best_size = static_cast<int>(pvc_cover_.size());
      r.cover = pvc_cover_;
    }
  }
  return r;
}

}  // namespace gvc::parallel
