#include "parallel/shared_state.hpp"

#include "util/check.hpp"

namespace gvc::parallel {

SharedSearch::SharedSearch(vc::Problem problem, int k, int initial_best,
                           std::vector<graph::Vertex> initial_cover,
                           vc::SolveControl* control)
    : problem_(problem),
      k_(k),
      control_(control),
      limits_(control ? control->limits : vc::Limits{}),
      best_(initial_best),
      best_cover_(std::move(initial_cover)) {
  GVC_CHECK(problem_ == vc::Problem::kMvc || k_ > 0);
  GVC_CHECK(initial_best >= 0);
  GVC_CHECK(static_cast<int>(best_cover_.size()) == initial_best);
}

bool SharedSearch::latch_stop(vc::StopCause cause) {
  std::uint8_t expected = static_cast<std::uint8_t>(vc::StopCause::kNone);
  stop_.compare_exchange_strong(expected, static_cast<std::uint8_t>(cause),
                                std::memory_order_acq_rel);
  return false;
}

bool SharedSearch::check_external() {
  if (control_ == nullptr) return true;
  const vc::StopCause cause = control_->external_stop();
  if (cause != vc::StopCause::kNone) return latch_stop(cause);
  return true;
}

bool SharedSearch::offer_cover(const vc::DegreeArray& da) {
  int size = da.solution_size();
  int cur = best_.load(std::memory_order_acquire);
  while (size < cur) {
    if (best_.compare_exchange_weak(cur, size, std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(mutex_);
      // Another improver may have raced us with an even smaller cover;
      // only materialize ours if it still matches the atomic.
      if (best_.load(std::memory_order_acquire) == size)
        best_cover_ = da.solution();
      if (control_ != nullptr && control_->progress_enabled())
        control_->publish_progress(size, nodes());
      return true;
    }
  }
  return false;
}

void SharedSearch::set_pvc_found(const vc::DegreeArray& da) {
  bool expected = false;
  if (pvc_found_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    pvc_cover_ = da.solution();
  }
}

bool SharedSearch::register_node() {
  // The cancel latch is one uncontended atomic load; observe it every node
  // so JobTicket::cancel() stops the solve promptly.
  if (control_ != nullptr && control_->cancelled())
    return latch_stop(vc::StopCause::kCancelled);
  std::uint64_t n = nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (limits_.max_tree_nodes != 0 && n > limits_.max_tree_nodes)
    return latch_stop(vc::StopCause::kNodeLimit);
  // Clock reads are cheap (vDSO) but still amortized across nodes; the
  // deadline shares the cadence of the relative time budget.
  if ((n & 63) == 0) {
    if (limits_.time_limit_s != 0.0 &&
        timer_.seconds() > limits_.time_limit_s)
      return latch_stop(vc::StopCause::kTimeLimit);
    if (control_ != nullptr && control_->deadline_passed())
      return latch_stop(vc::StopCause::kDeadline);
    if (control_ != nullptr && control_->progress_enabled())
      control_->publish_progress(
          problem_ == vc::Problem::kMvc ? best() : -1, n);
  }
  return !aborted();
}

bool SharedSearch::check_time_limit() {
  if (limits_.time_limit_s != 0.0 && timer_.seconds() > limits_.time_limit_s)
    return latch_stop(vc::StopCause::kTimeLimit);
  if (!check_external()) return false;
  return !aborted();
}

bool SharedSearch::register_nodes(std::uint64_t count) {
  if (count == 0) return !aborted();
  if (control_ != nullptr && control_->cancelled())
    return latch_stop(vc::StopCause::kCancelled);
  std::uint64_t n = nodes_.fetch_add(count, std::memory_order_relaxed) + count;
  if (limits_.max_tree_nodes != 0 && n > limits_.max_tree_nodes)
    return latch_stop(vc::StopCause::kNodeLimit);
  // Every bulk flush checks the clock — flushes are already amortized.
  if (limits_.time_limit_s != 0.0 && timer_.seconds() > limits_.time_limit_s)
    return latch_stop(vc::StopCause::kTimeLimit);
  if (control_ != nullptr) {
    if (control_->deadline_passed())
      return latch_stop(vc::StopCause::kDeadline);
    if (control_->progress_enabled())
      control_->publish_progress(
          problem_ == vc::Problem::kMvc ? best() : -1, n);
  }
  return !aborted();
}

vc::SolveResult SharedSearch::harvest() const {
  vc::SolveResult r;
  r.tree_nodes = nodes();
  const vc::StopCause stop = stop_cause();
  std::lock_guard<std::mutex> lock(mutex_);
  if (problem_ == vc::Problem::kMvc) {
    r.best_size = best_.load(std::memory_order_acquire);
    r.cover = best_cover_;
    r.outcome = stop == vc::StopCause::kNone
                    ? vc::Outcome::kOptimal
                    : vc::interrupted_outcome(stop, /*have_cover=*/true);
  } else if (pvc_found()) {
    // A witness answers the PVC question definitively even if a limit
    // latched while other blocks were still winding down.
    r.best_size = static_cast<int>(pvc_cover_.size());
    r.cover = pvc_cover_;
    r.outcome = vc::Outcome::kOptimal;
  } else {
    r.outcome = stop == vc::StopCause::kNone
                    ? vc::Outcome::kInfeasible
                    : vc::interrupted_outcome(stop, /*have_cover=*/false);
  }
  return r;
}

}  // namespace gvc::parallel
