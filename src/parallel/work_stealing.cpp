#include "parallel/work_stealing.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "parallel/node_visit.hpp"
#include "parallel/shared_state.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"
#include "vc/undo_trail.hpp"
#include "worklist/device_broker.hpp"
#include "worklist/steal_deque.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;
using util::Activity;
using util::ActivityScope;
using worklist::StealDeque;

/// The all-idle termination protocol over the deque ensemble — the same
/// scheme GlobalWorklist uses for its single queue (see §IV-C): a thief that
/// finds every deque empty registers as waiting; the last waiter re-scans
/// once and, still finding nothing, latches done. Blocks only push while
/// processing (not while waiting), so waiting == grid implies no in-flight
/// pushes.
class StealGroup {
 public:
  StealGroup(Vertex n, int depth_bound, int grid) : deques_() {
    deques_.reserve(static_cast<std::size_t>(grid));
    // Pool headroom = grid: at most every other block can hold an in-flight
    // extraction against one deque (plus the owner's own), so the Chase–Lev
    // payload pool can never exhaust mid-steal.
    for (int i = 0; i < grid; ++i)
      deques_.push_back(
          std::make_unique<StealDeque>(n, depth_bound, /*steal_headroom=*/grid));
  }

  int grid() const { return static_cast<int>(deques_.size()); }
  StealDeque& deque(int block) { return *deques_[static_cast<std::size_t>(block)]; }
  const StealDeque& deque(int block) const {
    return *deques_[static_cast<std::size_t>(block)];
  }

  /// Wakes sleeping thieves after a push made work visible.
  void notify() { cv_.notify_one(); }

  void signal_stop() {
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
  }
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  enum class StealOutcome { kGot, kDone };

  /// Blocking acquisition for an idle block: scan victims round-robin from
  /// `thief + 1`, sleep-retry on a fully empty scan, terminate when every
  /// block is waiting on an empty ensemble.
  StealOutcome steal(int thief, vc::DegreeArray& out,
                     std::uint64_t* attempts) {
    const int n = grid();
    for (;;) {
      if (stop_.load(std::memory_order_acquire) ||
          done_.load(std::memory_order_acquire))
        return StealOutcome::kDone;

      if (scan(thief, out, attempts)) return StealOutcome::kGot;

      int now_waiting = waiting_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (now_waiting == n) {
        if (scan(thief, out, attempts)) {
          waiting_.fetch_sub(1, std::memory_order_acq_rel);
          return StealOutcome::kGot;
        }
        done_.store(true, std::memory_order_release);
        waiting_.fetch_sub(1, std::memory_order_acq_rel);
        cv_.notify_all();
        return StealOutcome::kDone;
      }
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
          return stop_.load(std::memory_order_acquire) ||
                 done_.load(std::memory_order_acquire);
        });
      }
      waiting_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

 private:
  bool scan(int thief, vc::DegreeArray& out, std::uint64_t* attempts) {
    const int n = grid();
    for (int step = 1; step <= n; ++step) {
      // Own deque last: it was already drained by the owner-pop path, but a
      // completed steal may have been pushed back meanwhile.
      const int victim = (thief + step) % n;
      if (deques_[static_cast<std::size_t>(victim)]->empty_approx()) continue;
      ++*attempts;
      if (deques_[static_cast<std::size_t>(victim)]->try_steal_top(out))
        return true;
    }
    return false;
  }

  std::vector<std::unique_ptr<StealDeque>> deques_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> done_{false};
  std::atomic<int> waiting_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace

ParallelResult solve_work_stealing(const CsrGraph& g,
                                   const ParallelConfig& config,
                                   vc::SolveControl* control,
                                   SolveWorkspace* workspace,
                                   const StealEnv* env) {
  util::WallTimer timer;
  ParallelResult result;

  const bool mvc = config.problem == vc::Problem::kMvc;
  GVC_CHECK_MSG(mvc || config.k > 0, "PVC requires k > 0");

  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.greedy_upper_bound = greedy.size;
  const int depth_bound = (mvc ? greedy.size : config.k) + 2;

  result.plan = device::plan_launch(config.device, g.num_vertices(),
                                    depth_bound, config.block_size_override);
  const int grid =
      config.grid_override > 0 ? config.grid_override : result.plan.grid_size;
  GVC_CHECK(grid > 0);

  SharedSearch shared(config.problem, config.k, greedy.size,
                      std::move(greedy.cover), control);

  const Vertex n = g.num_vertices();
  StealGroup group(n, depth_bound, grid);

  // Seed: the root goes to block 0's deque; everyone else starts stealing.
  group.deque(0).push_bottom(vc::DegreeArray(g));

  std::atomic<std::uint64_t> steal_attempts_total{0};
  std::atomic<std::uint64_t> steals_total{0};
  if (workspace) workspace->prepare(grid);

  // Cross-device migration (steal tier 2): the node that would be
  // advertised on the own deque is exported to the broker instead while a
  // remote device is starved — Chase–Lev donation snapshots are already
  // detached, so crossing a device is the same contract as being stolen.
  std::optional<worklist::DeviceBroker::Group> steal_group;
  if (env != nullptr && env->broker != nullptr)
    steal_group.emplace(*env->broker, env->device_id,
                        [&](vc::DegreeArray&& node, vc::ReduceWorkspace& ws) {
                          drain_subtree(g, config, shared, std::move(node),
                                        ws);
                        });
  worklist::DeviceBroker::Group* migrate =
      steal_group.has_value() ? &*steal_group : nullptr;

  // Apply/undo variant: the owner's depth-first descent runs on the trail,
  // so deferred children are frames a thief cannot see. To keep the
  // ensemble steal-able the owner ADVERTISES work lazily: whenever its own
  // deque is empty at a branch, the neighbors child is materialized as a
  // standalone snapshot and pushed — that child is the shallowest deferred
  // node of the descent, exactly the one steal-the-oldest would take first
  // under kCopy. Everything else stays O(changed) frames. With a single
  // block the advertised node is always older than every frame, so the
  // pop order (frames LIFO, then the deque) reproduces kCopy's traversal
  // bit for bit; across blocks, steals are timing-dependent in both modes.
  //
  // The rate policy (config.advertise_interval = K > 0) additionally
  // advertises every K-th branch even when the deque is non-empty, trading
  // a few extra snapshots for steal availability on steal-heavy instances;
  // K = 0 means ∞, i.e. the pure lazy rule above, and the interval counter
  // then never fires — the two settings are node-for-node identical.
  auto body_undo_trail = [&](device::BlockContext& ctx) {
    const int id = ctx.block_id();
    StealDeque& own = group.deque(id);
    vc::DegreeArray da;
    vc::DegreeArray snapshot;  // reusable advertisement buffer
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws = workspace ? workspace->block(id) : local_ws;
    vc::UndoTrail& trail = ws.undo_trail;
    std::vector<vc::BranchFrame>& frames = ws.frames;
    trail.reset();
    frames.clear();
    da.attach_trail(&trail);
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    bool enter = false;  // true while da holds an unprocessed node
    std::uint64_t attempts = 0;
    const int advertise_interval = config.advertise_interval;
    std::int64_t branches_since_advert = 0;  // only counted when K > 0

    for (;;) {
      if (!mvc && shared.pvc_found()) break;
      if (shared.aborted()) {
        group.signal_stop();
        break;
      }

      if (!enter) {
        // Backtrack through the frames; once the descent is exhausted, take
        // back the advertised node (if no thief got it first), else steal.
        if (!vc::retreat_to_next_branch(trail, frames, g, da,
                                        &ctx.activities())) {
          trail.reset();
          bool popped;
          {
            ActivityScope scope(ctx.activities(), Activity::kStackPop);
            popped = own.try_pop_bottom(da);
          }
          if (!popped) {
            std::uint64_t t0 = util::thread_cpu_ns();
            StealGroup::StealOutcome out = group.steal(id, da, &attempts);
            std::uint64_t elapsed = util::thread_cpu_ns() - t0;
            if (out == StealGroup::StealOutcome::kDone) {
              ctx.activities().add(Activity::kTerminate, elapsed);
              break;
            }
            ctx.activities().add(Activity::kWorklistRemove, elapsed);
            steals_total.fetch_add(1, std::memory_order_relaxed);
            obs::trace_instant(obs::TraceCat::kWork, "steal", "attempts",
                               static_cast<std::int64_t>(attempts));
          }
          adopt_node(config, da, ws);  // fresh standalone node (pop or steal)
        }
      }
      enter = false;

      Vertex vmax = -1;
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) {
        group.signal_stop();
        break;
      }
      if (out == NodeOutcome::kFound && !mvc) {
        group.signal_stop();
        break;
      }
      if (out != NodeOutcome::kBranch) continue;  // enter stays false: backtrack

      // Branch: advertise the neighbors child when nothing of ours is
      // visible to thieves (or the rate policy fires), otherwise defer it
      // as a frame; then continue immediately with the vmax child. A
      // starved remote device outranks both: its demand materializes the
      // snapshot even when local thieves are fed, and the child leaves the
      // device entirely. An export that loses the race falls back to the
      // local rules (including the capacity gate — the §IV-E bound covers
      // the lazy rule, not an arbitrary advertisement backlog); with no
      // room either, the child stays a frame.
      bool advertised = false;
      if (advertise_interval > 0) ++branches_since_advert;
      const bool broker_wants = migrate != nullptr && migrate->want_export();
      // The rate-fired advertisement is opportunistic: when the deque is
      // already at capacity, keep the child as a frame instead. The size
      // gate reads a stale top_, which only UNDER-reports free space, so a
      // push it admits can never overflow.
      const bool advertise_locally =
          own.empty_approx() ||
          (advertise_interval > 0 &&
           branches_since_advert >= advertise_interval &&
           own.size_approx() < own.capacity());
      if (broker_wants || advertise_locally) {
        {
          ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
          snapshot = da;
          snapshot.remove_neighbors_into_solution(g, vmax);
        }
        if (broker_wants && migrate->try_export(std::move(snapshot))) {
          obs::trace_instant(obs::TraceCat::kWork, "migrate");
          advertised = true;
          branches_since_advert = 0;
        } else if (advertise_locally) {
          {
            ActivityScope scope(ctx.activities(), Activity::kStackPush);
            own.push_bottom(std::move(snapshot));
          }
          group.notify();
          advertised = true;
          branches_since_advert = 0;
        }
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        frames.push_back({trail.watermark(da), vmax, !advertised});
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      enter = true;
    }
    steal_attempts_total.fetch_add(attempts, std::memory_order_relaxed);
  };

  auto body_copy = [&](device::BlockContext& ctx) {
    const int id = ctx.block_id();
    StealDeque& own = group.deque(id);
    vc::DegreeArray da;
    vc::DegreeArray child;
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws = workspace ? workspace->block(id) : local_ws;
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    bool get_new_node = true;
    std::uint64_t attempts = 0;

    for (;;) {
      if (!mvc && shared.pvc_found()) break;
      if (shared.aborted()) {
        group.signal_stop();
        break;
      }

      if (get_new_node) {
        bool popped;
        {
          ActivityScope scope(ctx.activities(), Activity::kStackPop);
          popped = own.try_pop_bottom(da);
        }
        if (!popped) {
          // Cross-block traffic is charged like worklist removal so the
          // Fig. 6-style breakdown compares load-balancing overheads
          // across methods one-to-one.
          std::uint64_t t0 = util::thread_cpu_ns();
          StealGroup::StealOutcome out = group.steal(id, da, &attempts);
          std::uint64_t elapsed = util::thread_cpu_ns() - t0;
          if (out == StealGroup::StealOutcome::kDone) {
            ctx.activities().add(Activity::kTerminate, elapsed);
            break;
          }
          ctx.activities().add(Activity::kWorklistRemove, elapsed);
          steals_total.fetch_add(1, std::memory_order_relaxed);
          obs::trace_instant(obs::TraceCat::kWork, "steal", "attempts",
                             static_cast<std::int64_t>(attempts));
        }
        adopt_node(config, da, ws);  // fresh standalone node (pop or steal)
      }

      Vertex vmax = -1;
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) {
        group.signal_stop();
        break;
      }
      if (out == NodeOutcome::kFound && !mvc) {
        group.signal_stop();
        break;
      }
      if (out != NodeOutcome::kBranch) {
        get_new_node = true;
        continue;
      }

      // Branch exactly like Hybrid, except the neighbors child goes to the
      // OWN deque — load balancing is the thieves' job — unless a starved
      // remote device claims it first (tier-2 migration).
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        child = da;
        child.remove_neighbors_into_solution(g, vmax);
      }
      if (migrate != nullptr && migrate->want_export() &&
          migrate->try_export(std::move(child))) {
        obs::trace_instant(obs::TraceCat::kWork, "migrate");
      } else {
        {
          ActivityScope scope(ctx.activities(), Activity::kStackPush);
          own.push_bottom(child);
        }
        group.notify();
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      get_new_node = false;
    }
    steal_attempts_total.fetch_add(attempts, std::memory_order_relaxed);
  };

  auto body = [&](device::BlockContext& ctx) {
    if (config.branch_state == vc::BranchStateMode::kUndoTrail)
      body_undo_trail(ctx);
    else
      body_copy(ctx);
  };

  device::VirtualDevice dev(config.device);
  result.launch = dev.launch(grid, /*cooperative=*/true, body);

  // Settle migrated nodes before harvesting (see solve_hybrid): reclaim
  // and run what nobody imported — unless the solve already stopped — and
  // wait out every remotely running import.
  if (migrate != nullptr) {
    vc::ReduceWorkspace reclaim_ws;
    const bool abandon = shared.aborted() || (!mvc && shared.pvc_found());
    migrate->drain(reclaim_ws, abandon);
  }

  static_cast<vc::SolveResult&>(result) = shared.harvest();
  result.greedy_upper_bound = greedy.size;
  result.seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();

  // Map the deque ensemble's counters onto WorklistStats so the benches can
  // report all methods through one schema: adds = pushes, removes = owner
  // pops + successful steals; max_size_seen = deepest single deque.
  worklist::WorklistStats ws;
  std::uint64_t max_depth = 0;
  for (int b = 0; b < grid; ++b) {
    const StealDeque& d = group.deque(b);
    ws.adds += d.pushes();
    ws.removes += d.pops() + d.steals_suffered();
    max_depth = std::max(max_depth,
                         static_cast<std::uint64_t>(d.high_water()));
  }
  ws.max_size_seen = max_depth;
  ws.steals = steals_total.load(std::memory_order_relaxed);
  ws.steal_attempts = steal_attempts_total.load(std::memory_order_relaxed);
  result.worklist = ws;
  return result;
}

}  // namespace gvc::parallel
