#include "parallel/hybrid.hpp"

#include <algorithm>
#include <utility>

#include "parallel/shared_state.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"
#include "worklist/global_worklist.hpp"
#include "worklist/local_stack.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;
using util::Activity;
using util::ActivityScope;
using worklist::GlobalWorklist;

}  // namespace

ParallelResult solve_hybrid(const CsrGraph& g, const ParallelConfig& config,
                            vc::SolveControl* control,
                            SolveWorkspace* workspace) {
  util::WallTimer timer;
  ParallelResult result;

  const bool mvc = config.problem == vc::Problem::kMvc;
  GVC_CHECK_MSG(mvc || config.k > 0, "PVC requires k > 0");

  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.greedy_upper_bound = greedy.size;
  const int depth_bound = (mvc ? greedy.size : config.k) + 2;

  result.plan = device::plan_launch(config.device, g.num_vertices(),
                                    depth_bound, config.block_size_override);

  // Persistent grid: every block participates in the termination protocol,
  // so the grid size is exactly the resident-block count.
  const int grid =
      config.grid_override > 0 ? config.grid_override : result.plan.grid_size;
  GVC_CHECK(grid > 0);

  SharedSearch shared(config.problem, config.k, greedy.size,
                      std::move(greedy.cover), control);

  const auto threshold = static_cast<std::size_t>(
      config.worklist_threshold_frac *
      static_cast<double>(config.worklist_capacity));
  GlobalWorklist worklist(config.worklist_capacity,
                          std::min(threshold, config.worklist_capacity), grid);

  // Seed: the worklist initially holds the root of the tree (§IV-A).
  worklist.add(vc::DegreeArray(g));

  const Vertex n = g.num_vertices();
  if (workspace) workspace->prepare(grid);

  auto body = [&](device::BlockContext& ctx) {
    worklist::LocalStack stack(n, depth_bound);
    vc::DegreeArray da;
    vc::DegreeArray child;
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws =
        workspace ? workspace->block(ctx.block_id()) : local_ws;
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    bool get_new_node = true;

    for (;;) {
      // PVC: blocks check the found-flag before picking up new work (§IV-A);
      // the abort latch (node/time budget) exits the same way.
      if (!mvc && shared.pvc_found()) return;
      if (shared.aborted()) {
        worklist.signal_stop();
        return;
      }

      if (get_new_node) {
        bool popped;
        {
          ActivityScope scope(ctx.activities(), Activity::kStackPop);
          popped = stack.try_pop(da);
        }
        if (!popped) {
          // CPU time, like every activity: contention/polling cost is
          // charged, sleep-waiting is free (an idle SM). See EXPERIMENTS.md
          // for how this maps onto the paper's Fig. 6 waiting share.
          std::uint64_t t0 = util::thread_cpu_ns();
          GlobalWorklist::RemoveOutcome out = worklist.remove(da);
          std::uint64_t elapsed = util::thread_cpu_ns() - t0;
          if (out == GlobalWorklist::RemoveOutcome::kDone) {
            // Waiting that ends in termination is charged to "Terminate".
            ctx.activities().add(Activity::kTerminate, elapsed);
            return;
          }
          ctx.activities().add(Activity::kWorklistRemove, elapsed);
        }
      }

      if (!nodes.register_node()) {
        worklist.signal_stop();
        return;
      }
      visited.tick();

      const vc::BudgetPolicy policy =
          mvc ? vc::BudgetPolicy::mvc(shared.best())
              : vc::BudgetPolicy::pvc(config.k);
      vc::reduce(g, da, policy, config.semantics, config.rules,
                 &ctx.activities(), &ws);

      const std::int64_t s = da.solution_size();
      const std::int64_t e = da.num_edges();
      bool pruned;
      if (mvc) {
        const std::int64_t best = shared.best();
        pruned = s >= best || e > (best - s - 1) * (best - s - 1);
      } else {
        const std::int64_t k = config.k;
        pruned = s > k || e > (k - s) * (k - s);
      }
      if (pruned) {
        get_new_node = true;
        continue;
      }

      Vertex vmax;
      {
        ActivityScope scope(ctx.activities(), Activity::kFindMaxDegree);
        vmax = vc::select_branch_vertex(da, config.branch, config.branch_seed);
      }
      if (vmax < 0) {  // edgeless: new cover found
        if (mvc) {
          shared.offer_cover(da);
          get_new_node = true;
          continue;
        }
        shared.set_pvc_found(da);
        worklist.signal_stop();
        return;
      }

      // Branch (Fig. 4 lines 20-29): build the neighbors child, donate it
      // to the worklist if below threshold else keep it on the local stack,
      // then continue immediately with the vmax child.
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        child = da;
        child.remove_neighbors_into_solution(g, vmax);
      }
      bool donated;
      {
        ActivityScope scope(ctx.activities(), Activity::kWorklistAdd);
        donated = worklist.try_donate(std::move(child));
      }
      if (!donated) {
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        stack.push(child);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      get_new_node = false;
    }
  };

  device::VirtualDevice dev(config.device);
  result.launch = dev.launch(grid, /*cooperative=*/true, body);

  static_cast<vc::SolveResult&>(result) = shared.harvest();
  result.greedy_upper_bound = greedy.size;
  result.seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();
  result.worklist = worklist.stats();
  return result;
}

}  // namespace gvc::parallel
