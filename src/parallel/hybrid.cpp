#include "parallel/hybrid.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/node_visit.hpp"
#include "parallel/shared_state.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"
#include "vc/undo_trail.hpp"
#include "worklist/device_broker.hpp"
#include "worklist/global_worklist.hpp"
#include "worklist/local_stack.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;
using util::Activity;
using util::ActivityScope;
using worklist::GlobalWorklist;

}  // namespace

ParallelResult solve_hybrid(const CsrGraph& g, const ParallelConfig& config,
                            vc::SolveControl* control,
                            SolveWorkspace* workspace, const StealEnv* env) {
  util::WallTimer timer;
  ParallelResult result;

  const bool mvc = config.problem == vc::Problem::kMvc;
  GVC_CHECK_MSG(mvc || config.k > 0, "PVC requires k > 0");

  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.greedy_upper_bound = greedy.size;
  const int depth_bound = (mvc ? greedy.size : config.k) + 2;

  result.plan = device::plan_launch(config.device, g.num_vertices(),
                                    depth_bound, config.block_size_override);

  // Persistent grid: every block participates in the termination protocol,
  // so the grid size is exactly the resident-block count.
  const int grid =
      config.grid_override > 0 ? config.grid_override : result.plan.grid_size;
  GVC_CHECK(grid > 0);

  SharedSearch shared(config.problem, config.k, greedy.size,
                      std::move(greedy.cover), control);

  const auto threshold = static_cast<std::size_t>(
      config.worklist_threshold_frac *
      static_cast<double>(config.worklist_capacity));
  GlobalWorklist worklist(config.worklist_capacity,
                          std::min(threshold, config.worklist_capacity), grid);

  // Seed: the worklist initially holds the root of the tree (§IV-A).
  worklist.add(vc::DegreeArray(g));

  const Vertex n = g.num_vertices();
  if (workspace) workspace->prepare(grid);

  // Cross-device migration (steal tier 2): register this solve with the
  // hosting service's broker. A migrated node re-enters through
  // drain_subtree — the same adopt/visit path a donated node takes — run
  // against THIS solve's shared search, on whichever thread imports it.
  std::optional<worklist::DeviceBroker::Group> steal_group;
  if (env != nullptr && env->broker != nullptr)
    steal_group.emplace(*env->broker, env->device_id,
                        [&](vc::DegreeArray&& node, vc::ReduceWorkspace& ws) {
                          drain_subtree(g, config, shared, std::move(node),
                                        ws);
                        });
  worklist::DeviceBroker::Group* migrate =
      steal_group.has_value() ? &*steal_group : nullptr;

  // Apply/undo variant of the block loop: the local stack of self-contained
  // nodes is replaced by the workspace's trail + frame stack. A deferred
  // neighbors child is a frame (re-applied on backtrack); only a DONATED
  // child is materialized, as a standalone snapshot, because it leaves the
  // block. The donation gate is consulted before paying for that snapshot —
  // with one block the pre-check matches try_donate()'s own gate exactly,
  // which is what keeps single-block traversals bit-identical to kCopy.
  auto body_undo_trail = [&](device::BlockContext& ctx) {
    vc::DegreeArray da;
    vc::DegreeArray snapshot;  // reusable donation buffer
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws =
        workspace ? workspace->block(ctx.block_id()) : local_ws;
    vc::UndoTrail& trail = ws.undo_trail;
    std::vector<vc::BranchFrame>& frames = ws.frames;
    trail.reset();
    frames.clear();
    da.attach_trail(&trail);
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    bool enter = false;  // true while da holds an unprocessed node

    for (;;) {
      if (!mvc && shared.pvc_found()) return;
      if (shared.aborted()) {
        worklist.signal_stop();
        return;
      }

      if (!enter) {
        // Backtrack to the next deferred branch; when this root's sub-tree
        // is exhausted, adopt a new root from the worklist (the incoming
        // node replaces da's value wholesale, so the trail restarts empty).
        if (!vc::retreat_to_next_branch(trail, frames, g, da,
                                        &ctx.activities())) {
          trail.reset();
          std::uint64_t t0 = util::thread_cpu_ns();
          GlobalWorklist::RemoveOutcome out = worklist.remove(da);
          std::uint64_t elapsed = util::thread_cpu_ns() - t0;
          if (out == GlobalWorklist::RemoveOutcome::kDone) {
            ctx.activities().add(Activity::kTerminate, elapsed);
            return;
          }
          ctx.activities().add(Activity::kWorklistRemove, elapsed);
          adopt_node(config, da, ws);  // adopted a donated node
        }
      }
      enter = false;

      Vertex vmax = -1;
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) {
        worklist.signal_stop();
        return;
      }
      if (out == NodeOutcome::kFound && !mvc) {
        worklist.signal_stop();
        return;
      }
      if (out != NodeOutcome::kBranch) continue;  // enter stays false: backtrack

      // Branch: donate the neighbors child if a starved remote device or
      // the worklist wants it (materialized as a snapshot — it leaves the
      // block), otherwise defer it as a frame; then continue immediately
      // with the vmax child. The broker outranks the worklist: remote
      // demand means a whole device is idle, while the worklist threshold
      // only signals local blocks MAY go hungry soon. With no broker (or
      // no demand) the pre-existing single-device path runs unchanged.
      bool donated = false;
      const bool broker_wants = migrate != nullptr && migrate->want_export();
      // The gate is polled exactly when a LOCAL donation is on the table:
      // up front in the no-broker path (bit-identical to the single-device
      // build), or after a failed export — a fallback donation must clear
      // the same gate it would have cleared without a broker, so attaching
      // one never changes local donation pressure.
      bool gate_open = !broker_wants && worklist.poll_donate_gate();
      if (broker_wants || gate_open) {
        {
          ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
          snapshot = da;
          snapshot.remove_neighbors_into_solution(g, vmax);
        }
        ActivityScope scope(ctx.activities(), Activity::kWorklistAdd);
        if (broker_wants) {
          donated = migrate->try_export(std::move(snapshot));
          if (donated)
            obs::trace_instant(obs::TraceCat::kWork, "migrate");
          else
            gate_open = worklist.poll_donate_gate();
        }
        if (!donated && gate_open) {
          donated = worklist.try_donate(std::move(snapshot));
          if (donated) obs::trace_instant(obs::TraceCat::kWork, "donate");
        }
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        frames.push_back({trail.watermark(da), vmax, !donated});
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      enter = true;
    }
  };

  auto body_copy = [&](device::BlockContext& ctx) {
    worklist::LocalStack stack(n, depth_bound);
    vc::DegreeArray da;
    vc::DegreeArray child;
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws =
        workspace ? workspace->block(ctx.block_id()) : local_ws;
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    bool get_new_node = true;

    for (;;) {
      // PVC: blocks check the found-flag before picking up new work (§IV-A);
      // the abort latch (node/time budget) exits the same way.
      if (!mvc && shared.pvc_found()) return;
      if (shared.aborted()) {
        worklist.signal_stop();
        return;
      }

      if (get_new_node) {
        bool popped;
        {
          ActivityScope scope(ctx.activities(), Activity::kStackPop);
          popped = stack.try_pop(da);
        }
        if (popped) {
          adopt_node(config, da, ws);  // fresh standalone node
        } else {
          // CPU time, like every activity: contention/polling cost is
          // charged, sleep-waiting is free (an idle SM). See EXPERIMENTS.md
          // for how this maps onto the paper's Fig. 6 waiting share.
          std::uint64_t t0 = util::thread_cpu_ns();
          GlobalWorklist::RemoveOutcome out = worklist.remove(da);
          std::uint64_t elapsed = util::thread_cpu_ns() - t0;
          if (out == GlobalWorklist::RemoveOutcome::kDone) {
            // Waiting that ends in termination is charged to "Terminate".
            ctx.activities().add(Activity::kTerminate, elapsed);
            return;
          }
          ctx.activities().add(Activity::kWorklistRemove, elapsed);
          adopt_node(config, da, ws);  // adopted a donated node
        }
      }

      Vertex vmax = -1;
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) {
        worklist.signal_stop();
        return;
      }
      if (out == NodeOutcome::kFound && !mvc) {
        worklist.signal_stop();
        return;
      }
      if (out != NodeOutcome::kBranch) {
        get_new_node = true;
        continue;
      }

      // Branch (Fig. 4 lines 20-29): build the neighbors child, export it
      // to a starved remote device first, else donate it to the worklist
      // if below threshold, else keep it on the local stack; then continue
      // immediately with the vmax child.
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        child = da;
        child.remove_neighbors_into_solution(g, vmax);
      }
      bool donated;
      {
        ActivityScope scope(ctx.activities(), Activity::kWorklistAdd);
        donated = migrate != nullptr && migrate->want_export() &&
                  migrate->try_export(std::move(child));
        if (donated) {
          obs::trace_instant(obs::TraceCat::kWork, "migrate");
        } else {
          donated = worklist.try_donate(std::move(child));
          if (donated) obs::trace_instant(obs::TraceCat::kWork, "donate");
        }
      }
      if (!donated) {
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        stack.push(child);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      get_new_node = false;
    }
  };

  auto body = [&](device::BlockContext& ctx) {
    if (config.branch_state == vc::BranchStateMode::kUndoTrail)
      body_undo_trail(ctx);
    else
      body_copy(ctx);
  };

  device::VirtualDevice dev(config.device);
  result.launch = dev.launch(grid, /*cooperative=*/true, body);

  // Settle migrated nodes BEFORE harvesting: un-imported exports are taken
  // back and run inline (they are unexplored subtrees — a clean MVC
  // optimum must cover them) unless the solve already stopped, and the
  // drain blocks until every remotely running import has completed against
  // `shared` — nothing references this solve's stack after this line.
  if (migrate != nullptr) {
    vc::ReduceWorkspace reclaim_ws;
    const bool abandon = shared.aborted() || (!mvc && shared.pvc_found());
    migrate->drain(reclaim_ws, abandon);
  }

  static_cast<vc::SolveResult&>(result) = shared.harvest();
  result.greedy_upper_bound = greedy.size;
  result.seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();
  result.worklist = worklist.stats();
  return result;
}

}  // namespace gvc::parallel
