#pragma once

// Configuration and result types shared by the two GPU-style solvers.

#include <cstdint>
#include <vector>

#include "device/device_spec.hpp"
#include "device/occupancy.hpp"
#include "device/virtual_device.hpp"
#include "vc/branching.hpp"
#include "vc/reductions.hpp"
#include "vc/sequential.hpp"
#include "vc/solve_types.hpp"
#include "worklist/global_worklist.hpp"

namespace gvc::parallel {

/// Reusable cross-job solver scratch. A solve() call allocates per-block
/// reduce workspaces (degree-array-sized vectors) on every invocation; a
/// caller that solves many instances back to back — a SolveService worker,
/// a harness sweep — holds one SolveWorkspace and passes it to every call
/// so those buffers are paid for once and stay warm across jobs. The
/// workspace is NOT thread-safe: one workspace per calling thread. Within
/// one solve() the blocks of the launch index disjoint entries, which is
/// safe because the pool is sized before the grid starts.
class SolveWorkspace {
 public:
  /// Scratch for block `block_id` of the current launch. Valid only between
  /// prepare(grid) and the next prepare().
  vc::ReduceWorkspace& block(int block_id) {
    return blocks_[static_cast<std::size_t>(block_id)];
  }

  /// Grows the per-block pool to `grid` entries. Called by each solver
  /// before its launch; buffers of previous jobs are kept (that reuse is
  /// the point).
  void prepare(int grid) {
    if (blocks_.size() < static_cast<std::size_t>(grid))
      blocks_.resize(static_cast<std::size_t>(grid));
  }

  /// Releases per-block scratch beyond `max_blocks`. Long-lived owners
  /// (service workers) call this between jobs so one huge-grid job — e.g.
  /// StackOnly at start_depth 16 = 65536 blocks, each holding |V|-sized
  /// buffers — doesn't pin its pool for the owner's lifetime. The first
  /// `max_blocks` entries stay warm for the common resident-grid sizes.
  void trim(int max_blocks) {
    if (blocks_.size() > static_cast<std::size_t>(max_blocks)) {
      blocks_.resize(static_cast<std::size_t>(max_blocks));
      blocks_.shrink_to_fit();
    }
  }

  std::size_t block_count() const { return blocks_.size(); }

 private:
  std::vector<vc::ReduceWorkspace> blocks_;
};

struct ParallelConfig {
  vc::Problem problem = vc::Problem::kMvc;
  int k = 0;  ///< PVC bound

  /// Device model the kernel is planned against (§IV-E). For host runs use
  /// a scaled device (see DeviceSpec presets) so the grid fits host threads.
  device::DeviceSpec device = device::DeviceSpec::host_scaled();

  /// Reduction-rule semantics. kIncremental (the default) is the
  /// candidate-driven fast path shared by every solver; the paper's GPU
  /// kernels use the sweep semantics (§IV-D), which the reproduction
  /// harness requests explicitly (harness::Runner pins kParallelSweep for
  /// the parallel methods and kSerial for the Sequential baseline).
  vc::ReduceSemantics semantics = vc::ReduceSemantics::kIncremental;
  vc::RuleSet rules = {};

  // Node/time budgets no longer live here: pass a vc::SolveControl (which
  // bundles Limits with the cancel latch and deadline) to solve(). Keeping
  // execution policy out of the config also keeps it out of the cache key —
  // a complete record is limit-independent, so requests differing only in
  // budgets now share one cache entry.

  /// Branching-vertex selection; kMaxDegree is the paper's rule (§II-B).
  vc::BranchStrategy branch = vc::BranchStrategy::kMaxDegree;
  std::uint64_t branch_seed = 0;  ///< used by BranchStrategy::kRandom

  /// How the depth-first descent carries state across a branch (see
  /// vc::BranchStateMode). kUndoTrail (the default) backtracks by rolling
  /// an undo trail instead of restoring an O(|V|) copy and is bit-identical
  /// to kCopy; the paper-faithful harness pins kCopy (§IV-B's
  /// self-contained nodes). GlobalOnly has no local descent and ignores
  /// this. Execution policy only — results are identical by contract — so
  /// like Limits it stays OUT of the result-cache key.
  vc::BranchStateMode branch_state = vc::BranchStateMode::kUndoTrail;

  /// Shape-specialized reduce kernels (see vc/reductions.hpp): each block
  /// classifies the node it adopts and reduces through kernels compiled for
  /// exactly that shape. Execution policy — bit-identical trees to kGeneric
  /// by contract — so like branch_state it stays OUT of the result-cache
  /// key.
  vc::KernelDispatch kernel_dispatch = vc::KernelDispatch::kAuto;

  /// max_degree_vertex() backend (see vc/degree_buckets.hpp). Both backends
  /// return the same smallest-id argmax, so this too is execution policy
  /// and stays out of the cache key.
  vc::MaxDegreeBackend max_degree_backend = vc::MaxDegreeBackend::kCachedHint;

  /// Force a block size in the occupancy plan (0 = let §IV-E choose).
  int block_size_override = 0;

  /// Force the grid size (0 = the plan's resident-grid size). For Hybrid
  /// this is the number of persistent blocks in the termination protocol.
  int grid_override = 0;

  // --- StackOnly ---
  /// Sub-trees start at this tree depth: the grid is 2^start_depth blocks
  /// (the paper evaluates depths 8/12/16 on the full-size card; the scaled
  /// ablation sweeps 4/6/8/10).
  int start_depth = 6;

  // --- WorkStealing ---
  /// Advertisement rate policy for the kUndoTrail engine: in addition to
  /// the lazy rule (snapshot the neighbors child onto the own deque only
  /// when the deque is empty), advertise every K-th branch so thieves see
  /// more than one stealable node per block on steal-heavy instances.
  /// 0 = ∞ (lazy only) — node-for-node identical to any K large enough
  /// never to fire, and the default. The optimum is unchanged, but finite
  /// K reorders the traversal (different node counts and worklist stats),
  /// so unlike branch_state it IS part of the result-cache key.
  int advertise_interval = 0;

  // --- Hybrid ---
  /// Global worklist capacity in entries (the paper uses 128K-512K on a
  /// 32 GiB card; scaled defaults keep the same threshold/capacity ratios).
  std::size_t worklist_capacity = 4096;

  /// Donation threshold as a fraction of capacity (paper sweeps 0.25-1.0).
  double worklist_threshold_frac = 0.5;
};

/// The Sequential-engine view of a ParallelConfig: every field the
/// single-block solver understands, mapped one to one. This is the single
/// place that mapping lives — dispatch_solve's kSequential arm and the
/// batch solver (one Sequential engine per block) both use it, so a field
/// added to both configs cannot be silently dropped in one path. (Before
/// this helper existed, the solver.cpp copy dropped kernel_dispatch and
/// max_degree_backend.)
inline vc::SequentialConfig sequential_config_of(const ParallelConfig& config) {
  vc::SequentialConfig sc;
  sc.problem = config.problem;
  sc.k = config.k;
  sc.semantics = config.semantics;
  sc.rules = config.rules;
  sc.branch = config.branch;
  sc.branch_seed = config.branch_seed;
  sc.branch_state = config.branch_state;
  sc.kernel_dispatch = config.kernel_dispatch;
  sc.max_degree_backend = config.max_degree_backend;
  return sc;
}

struct ParallelResult : vc::SolveResult {
  device::LaunchPlan plan;
  device::LaunchStats launch;
  worklist::WorklistStats worklist;  ///< meaningful for Hybrid only

  /// Simulated parallel execution time: the per-SM CPU-work makespan of the
  /// launch (LaunchStats::makespan_seconds). For Sequential this equals
  /// `seconds`. The benches report this as the "GPU time" — on a host with
  /// fewer cores than virtual SMs, `seconds` measures total work instead.
  double sim_seconds = 0.0;

  /// GlobalOnly only: number of tree nodes a block had to keep locally
  /// because the worklist was full — the frontier-explosion events of
  /// §IV-A's strawman design. Always 0 for the other methods.
  std::uint64_t overflow_spills = 0;
};

}  // namespace gvc::parallel
