#pragma once

// Configuration and result types shared by the two GPU-style solvers.

#include <cstdint>

#include "device/device_spec.hpp"
#include "device/occupancy.hpp"
#include "device/virtual_device.hpp"
#include "vc/branching.hpp"
#include "vc/solve_types.hpp"
#include "worklist/global_worklist.hpp"

namespace gvc::parallel {

struct ParallelConfig {
  vc::Problem problem = vc::Problem::kMvc;
  int k = 0;  ///< PVC bound

  /// Device model the kernel is planned against (§IV-E). For host runs use
  /// a scaled device (see DeviceSpec presets) so the grid fits host threads.
  device::DeviceSpec device = device::DeviceSpec::host_scaled();

  /// Reduction-rule semantics. kIncremental (the default) is the
  /// candidate-driven fast path shared by every solver; the paper's GPU
  /// kernels use the sweep semantics (§IV-D), which the reproduction
  /// harness requests explicitly (harness::Runner pins kParallelSweep for
  /// the parallel methods and kSerial for the Sequential baseline).
  vc::ReduceSemantics semantics = vc::ReduceSemantics::kIncremental;
  vc::RuleSet rules = {};
  vc::Limits limits = {};

  /// Branching-vertex selection; kMaxDegree is the paper's rule (§II-B).
  vc::BranchStrategy branch = vc::BranchStrategy::kMaxDegree;
  std::uint64_t branch_seed = 0;  ///< used by BranchStrategy::kRandom

  /// Force a block size in the occupancy plan (0 = let §IV-E choose).
  int block_size_override = 0;

  /// Force the grid size (0 = the plan's resident-grid size). For Hybrid
  /// this is the number of persistent blocks in the termination protocol.
  int grid_override = 0;

  // --- StackOnly ---
  /// Sub-trees start at this tree depth: the grid is 2^start_depth blocks
  /// (the paper evaluates depths 8/12/16 on the full-size card; the scaled
  /// ablation sweeps 4/6/8/10).
  int start_depth = 6;

  // --- Hybrid ---
  /// Global worklist capacity in entries (the paper uses 128K-512K on a
  /// 32 GiB card; scaled defaults keep the same threshold/capacity ratios).
  std::size_t worklist_capacity = 4096;

  /// Donation threshold as a fraction of capacity (paper sweeps 0.25-1.0).
  double worklist_threshold_frac = 0.5;
};

struct ParallelResult : vc::SolveResult {
  device::LaunchPlan plan;
  device::LaunchStats launch;
  worklist::WorklistStats worklist;  ///< meaningful for Hybrid only

  /// Simulated parallel execution time: the per-SM CPU-work makespan of the
  /// launch (LaunchStats::makespan_seconds). For Sequential this equals
  /// `seconds`. The benches report this as the "GPU time" — on a host with
  /// fewer cores than virtual SMs, `seconds` measures total work instead.
  double sim_seconds = 0.0;

  /// GlobalOnly only: number of tree nodes a block had to keep locally
  /// because the worklist was full — the frontier-explosion events of
  /// §IV-A's strawman design. Always 0 for the other methods.
  std::uint64_t overflow_spills = 0;
};

}  // namespace gvc::parallel
