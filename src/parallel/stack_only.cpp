#include "parallel/stack_only.hpp"

#include <utility>

#include "parallel/shared_state.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"
#include "worklist/local_stack.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;
using util::Activity;
using util::ActivityScope;

enum class NodeOutcome { kAbort, kPruned, kFound, kBranch };

/// One visit of Fig. 1: reduce, stopping condition, cover check. On kBranch,
/// vmax_out holds the branching vertex.
NodeOutcome process_node(const CsrGraph& g, const ParallelConfig& config,
                         SharedSearch& shared, NodeBatch& nodes,
                         device::NodeCounter& visited,
                         device::BlockContext& ctx, vc::DegreeArray& da,
                         vc::ReduceWorkspace& workspace, Vertex& vmax_out) {
  if (!nodes.register_node()) return NodeOutcome::kAbort;
  visited.tick();

  const bool mvc = config.problem == vc::Problem::kMvc;
  const vc::BudgetPolicy policy = mvc ? vc::BudgetPolicy::mvc(shared.best())
                                      : vc::BudgetPolicy::pvc(config.k);
  vc::reduce(g, da, policy, config.semantics, config.rules, &ctx.activities(),
             &workspace);

  const std::int64_t s = da.solution_size();
  const std::int64_t e = da.num_edges();
  if (mvc) {
    const std::int64_t best = shared.best();
    if (s >= best || e > (best - s - 1) * (best - s - 1))
      return NodeOutcome::kPruned;
  } else {
    const std::int64_t k = config.k;
    if (s > k || e > (k - s) * (k - s)) return NodeOutcome::kPruned;
  }

  Vertex vmax;
  {
    ActivityScope scope(ctx.activities(), Activity::kFindMaxDegree);
    vmax = vc::select_branch_vertex(da, config.branch, config.branch_seed);
  }
  if (vmax < 0) {  // edgeless: cover found
    if (mvc)
      shared.offer_cover(da);
    else
      shared.set_pvc_found(da);
    return NodeOutcome::kFound;
  }
  vmax_out = vmax;
  return NodeOutcome::kBranch;
}

}  // namespace

ParallelResult solve_stack_only(const CsrGraph& g,
                                const ParallelConfig& config,
                                vc::SolveControl* control,
                                SolveWorkspace* workspace) {
  util::WallTimer timer;
  ParallelResult result;

  const bool mvc = config.problem == vc::Problem::kMvc;
  GVC_CHECK_MSG(mvc || config.k > 0, "PVC requires k > 0");
  GVC_CHECK(config.start_depth >= 0 && config.start_depth < 24);

  // Greedy approximation on the CPU (§II-B): seeds `best` and bounds the
  // local stack depth (§IV-E).
  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.greedy_upper_bound = greedy.size;
  const int depth_bound = (mvc ? greedy.size : config.k) + 2;

  result.plan = device::plan_launch(config.device, g.num_vertices(),
                                    depth_bound, config.block_size_override);

  SharedSearch shared(config.problem, config.k, greedy.size,
                      std::move(greedy.cover), control);

  // One block per depth-D branch pattern. grid_override is not meaningful
  // here: the grid is structurally 2^start_depth.
  const int grid = 1 << config.start_depth;
  const Vertex n = g.num_vertices();
  if (workspace) workspace->prepare(grid);

  auto body = [&](device::BlockContext& ctx) {
    if (shared.aborted()) return;
    if (!mvc && shared.pvc_found()) return;

    // Phase 1 — descend from the root to this block's sub-tree, replaying
    // the branch decisions encoded in the block id (redundant across blocks
    // with a shared prefix; that redundancy is the point of the baseline).
    vc::DegreeArray da(g);
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws =
        workspace ? workspace->block(ctx.block_id()) : local_ws;
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    Vertex vmax = -1;
    for (int level = 0; level < config.start_depth; ++level) {
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out != NodeOutcome::kBranch) return;  // sub-tree is empty
      if ((ctx.block_id() >> level) & 1) {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        da.remove_neighbors_into_solution(g, vmax);
      } else {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
    }

    // Phase 2 — depth-first traversal of the sub-tree with the pre-allocated
    // local stack.
    worklist::LocalStack stack(n, depth_bound);
    bool have_node = true;
    vc::DegreeArray child;
    for (;;) {
      if (!have_node) {
        ActivityScope scope(ctx.activities(), Activity::kStackPop);
        if (!stack.try_pop(da)) break;  // sub-tree exhausted
      }
      if (!mvc && shared.pvc_found()) return;

      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) return;
      if (out != NodeOutcome::kBranch) {
        have_node = false;
        continue;
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        child = da;
        child.remove_neighbors_into_solution(g, vmax);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        stack.push(child);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      have_node = true;
    }
  };

  device::VirtualDevice dev(config.device);
  result.launch =
      dev.launch(grid, /*cooperative=*/false, body, result.plan.grid_size);

  static_cast<vc::SolveResult&>(result) = shared.harvest();
  result.greedy_upper_bound = greedy.size;
  result.seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();
  return result;
}

}  // namespace gvc::parallel
