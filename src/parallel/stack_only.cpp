#include "parallel/stack_only.hpp"

#include <utility>

#include "parallel/node_visit.hpp"
#include "parallel/shared_state.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"
#include "vc/undo_trail.hpp"
#include "worklist/local_stack.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;
using util::Activity;
using util::ActivityScope;

}  // namespace

ParallelResult solve_stack_only(const CsrGraph& g,
                                const ParallelConfig& config,
                                vc::SolveControl* control,
                                SolveWorkspace* workspace) {
  util::WallTimer timer;
  ParallelResult result;

  const bool mvc = config.problem == vc::Problem::kMvc;
  GVC_CHECK_MSG(mvc || config.k > 0, "PVC requires k > 0");
  GVC_CHECK(config.start_depth >= 0 && config.start_depth < 24);

  // Greedy approximation on the CPU (§II-B): seeds `best` and bounds the
  // local stack depth (§IV-E).
  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.greedy_upper_bound = greedy.size;
  const int depth_bound = (mvc ? greedy.size : config.k) + 2;

  result.plan = device::plan_launch(config.device, g.num_vertices(),
                                    depth_bound, config.block_size_override);

  SharedSearch shared(config.problem, config.k, greedy.size,
                      std::move(greedy.cover), control);

  // One block per depth-D branch pattern. grid_override is not meaningful
  // here: the grid is structurally 2^start_depth.
  const int grid = 1 << config.start_depth;
  const Vertex n = g.num_vertices();
  if (workspace) workspace->prepare(grid);

  auto body = [&](device::BlockContext& ctx) {
    if (shared.aborted()) return;
    if (!mvc && shared.pvc_found()) return;

    // Phase 1 — descend from the root to this block's sub-tree, replaying
    // the branch decisions encoded in the block id (redundant across blocks
    // with a shared prefix; that redundancy is the point of the baseline).
    vc::DegreeArray da(g);
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws =
        workspace ? workspace->block(ctx.block_id()) : local_ws;
    adopt_node(config, da, ws);        // root pickup
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    Vertex vmax = -1;
    for (int level = 0; level < config.start_depth; ++level) {
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out != NodeOutcome::kBranch) return;  // sub-tree is empty
      if ((ctx.block_id() >> level) & 1) {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        da.remove_neighbors_into_solution(g, vmax);
      } else {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
    }

    // Phase 2 — depth-first traversal of the sub-tree. Nothing in this
    // sub-tree ever leaves the block, so the apply/undo engine needs no
    // snapshot path at all: a branch is a watermark + an in-place mutation,
    // a backtrack is a trail rollback. kCopy keeps the paper's
    // pre-allocated local stack of self-contained nodes.
    if (config.branch_state == vc::BranchStateMode::kUndoTrail) {
      vc::UndoTrail& trail = ws.undo_trail;
      std::vector<vc::BranchFrame>& frames = ws.frames;
      trail.reset();
      frames.clear();
      da.attach_trail(&trail);
      bool have_node = true;
      while (have_node) {
        if (!mvc && shared.pvc_found()) break;
        NodeOutcome out =
            process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
        if (out == NodeOutcome::kAbort) break;
        if (out == NodeOutcome::kBranch) {
          {
            ActivityScope scope(ctx.activities(), Activity::kStackPush);
            frames.push_back({trail.watermark(da), vmax, true});
          }
          ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
          da.remove_into_solution(g, vmax);
          continue;
        }
        have_node =
            vc::retreat_to_next_branch(trail, frames, g, da, &ctx.activities());
      }
      da.attach_trail(nullptr);
      return;
    }

    worklist::LocalStack stack(n, depth_bound);
    bool have_node = true;
    vc::DegreeArray child;
    for (;;) {
      if (!have_node) {
        {
          ActivityScope scope(ctx.activities(), Activity::kStackPop);
          if (!stack.try_pop(da)) break;  // sub-tree exhausted
        }
        adopt_node(config, da, ws);  // fresh standalone node
      }
      if (!mvc && shared.pvc_found()) return;

      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) return;
      if (out != NodeOutcome::kBranch) {
        have_node = false;
        continue;
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        child = da;
        child.remove_neighbors_into_solution(g, vmax);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        stack.push(child);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      have_node = true;
    }
  };

  device::VirtualDevice dev(config.device);
  result.launch =
      dev.launch(grid, /*cooperative=*/false, body, result.plan.grid_size);

  static_cast<vc::SolveResult&>(result) = shared.harvest();
  result.greedy_upper_bound = greedy.size;
  result.seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();
  return result;
}

}  // namespace gvc::parallel
