#include "parallel/batch.hpp"

#include <algorithm>
#include <thread>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/sequential.hpp"

namespace gvc::parallel {

BatchResult solve_batch(const std::vector<const graph::CsrGraph*>& graphs,
                        const ParallelConfig& config,
                        vc::SolveControl* control, SolveWorkspace* workspace) {
  BatchResult result;
  if (graphs.empty()) return result;
  for (const auto* g : graphs) GVC_CHECK(g != nullptr);

  util::WallTimer timer;

  // Size the resident pool off the largest instance in the batch. The depth
  // bound is the conservative |V|max (a search never branches deeper than
  // the vertex count) — the plan only sizes slots here, it doesn't bound
  // any real stack, and the per-graph greedy bounds aren't known until the
  // blocks run.
  std::int64_t max_n = 1;
  for (const auto* g : graphs)
    max_n = std::max<std::int64_t>(max_n, g->num_vertices());
  result.plan =
      device::plan_launch(config.device, max_n, static_cast<int>(max_n) + 2,
                          config.block_size_override);
  const int grid = static_cast<int>(graphs.size());
  // Default residency: the §IV-E occupancy plan, additionally capped at the
  // HOST's core count. `plan` records the simulated device's residency
  // untouched, but batch slots are host threads running real searches — on
  // a machine with fewer cores than the plan's grid, extra slots only add
  // context switches to a throughput path. An explicit grid_override is
  // respected as given (tests pin determinism knobs with it).
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  const int resident =
      config.grid_override > 0
          ? std::min(config.grid_override, grid)
          : std::min({result.plan.grid_size, grid, cores});
  GVC_CHECK(resident > 0);

  const vc::SequentialConfig sc = sequential_config_of(config);
  if (workspace) workspace->prepare(resident);

  result.results.resize(graphs.size());
  device::VirtualDevice device(config.device);

  obs::TraceSpan span(obs::TraceCat::kSolve, "SolveBatch", "graphs", grid);
  result.launch = device.launch(
      grid, /*cooperative=*/false,
      [&](device::BlockContext& ctx) {
        const int b = ctx.block_id();
        // Scratch is keyed on the resident slot, not the block: a 10k-graph
        // batch reuses ~resident workspaces instead of allocating 10k.
        vc::ReduceWorkspace* ws =
            workspace ? &workspace->block(ctx.slot_id()) : nullptr;
        vc::SolveResult r = vc::solve_sequential(
            *graphs[static_cast<std::size_t>(b)], sc, control, ws);
        ctx.count_nodes(r.tree_nodes);
        result.results[static_cast<std::size_t>(b)] = std::move(r);
      },
      resident);

  result.wall_seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();
  return result;
}

}  // namespace gvc::parallel
