#pragma once

// MVC through repeated PVC queries — the flip side of the paper's §II-B
// observation that "PVC tends to be faster than MVC when k ≥ min" because
// the search stops at the first cover, while MVC must exhaust the tree.
//
// Any monotone sequence of PVC queries pins the minimum:
//   * kLinearDown starts at the greedy upper bound and decreases k until
//     the first "no". Every "yes" query is one of the paper's easy
//     instances (k ≥ min); exactly one hard k = min − 1 proof is paid.
//   * kBinary bisects [lower_bound, greedy_ub]. Fewer queries, but the
//     early probes sit well below min, and the paper's Table I shows
//     k < min instances are as hard as MVC (full-tree refutations).
//
// bench/ablation_mvc_via_pvc measures when either beats the direct MVC
// solve. The queries run through any of the parallel engines.

#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/solver.hpp"

namespace gvc::parallel {

enum class PvcSearch {
  kLinearDown,  ///< greedy_ub − 1, −2, ... until the first "no"
  kBinary,      ///< bisect [matching/clique lower bound, greedy_ub]
};

struct MvcViaPvcResult {
  int best_size = -1;
  std::vector<graph::Vertex> cover;

  int queries = 0;                          ///< PVC solves issued
  std::vector<std::pair<int, bool>> trace;  ///< (k, found) per query
  std::uint64_t total_tree_nodes = 0;       ///< summed over all queries
  double seconds = 0.0;                     ///< wall clock, all queries

  /// kOptimal once the minimum is pinned. When a query is interrupted its
  /// cause is recorded here and the result is only an upper bound on the
  /// minimum (the best witness seen).
  vc::Outcome outcome = vc::Outcome::kOptimal;

  bool complete() const { return vc::is_complete(outcome); }
  bool limit_hit() const { return vc::is_limit(outcome); }
};

/// Computes the minimum vertex cover of g by PVC queries through `method`.
/// `config`'s problem/k fields are overridden per query. `control` is
/// shared by every query: its node/time budgets apply to each query
/// individually (they restart per solve), while a cancel() or deadline
/// stops the whole ladder at the current query.
MvcViaPvcResult solve_mvc_via_pvc(const graph::CsrGraph& g, Method method,
                                  const ParallelConfig& config,
                                  PvcSearch search = PvcSearch::kLinearDown,
                                  vc::SolveControl* control = nullptr);

}  // namespace gvc::parallel
