#include "parallel/mvc_via_pvc.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/bounds.hpp"
#include "vc/greedy.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;

/// One PVC probe at the given k, recorded into the result.
bool probe(const CsrGraph& g, Method method, const ParallelConfig& base,
           int k, MvcViaPvcResult& result,
           std::vector<Vertex>* cover_if_found, vc::SolveControl* control) {
  ParallelConfig config = base;
  config.problem = vc::Problem::kPvc;
  config.k = k;
  ParallelResult r = solve(g, method, config, control);
  ++result.queries;
  result.trace.emplace_back(k, r.has_cover());
  result.total_tree_nodes += r.tree_nodes;
  // The first interrupted query taints the ladder: a "no" that was really
  // "ran out of budget" makes the final answer an upper bound only.
  if (r.limit_hit() && result.complete()) result.outcome = r.outcome;
  if (r.has_cover() && cover_if_found != nullptr) *cover_if_found = r.cover;
  return r.has_cover();
}

}  // namespace

MvcViaPvcResult solve_mvc_via_pvc(const CsrGraph& g, Method method,
                                  const ParallelConfig& config,
                                  PvcSearch search,
                                  vc::SolveControl* control) {
  util::WallTimer timer;
  MvcViaPvcResult result;

  // The greedy cover is the initial witness: PVC(greedy_ub) is trivially
  // "yes", so the search starts strictly below it.
  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.best_size = greedy.size;
  result.cover = greedy.cover;

  if (greedy.size == 0) {  // edgeless
    result.seconds = timer.seconds();
    return result;
  }

  if (search == PvcSearch::kLinearDown) {
    // Every "yes" lowers the witness; the single "no" proves minimality.
    // k = 0 is never probed: the graph has an edge, so min ≥ 1.
    for (int k = greedy.size - 1; k >= 1; --k) {
      // An external stop ends the whole ladder: further probes would each
      // pay full solve setup only to abort at their first node check.
      if (control != nullptr &&
          control->external_stop() != vc::StopCause::kNone)
        break;
      std::vector<Vertex> cover;
      if (!probe(g, method, config, k, result, &cover, control)) break;
      // The solver may find a cover smaller than k; skip the gap.
      result.cover = std::move(cover);
      result.best_size = static_cast<int>(result.cover.size());
      k = result.best_size;  // loop decrement probes best_size - 1 next
    }
  } else {
    int lo = vc::lower_bound(g);  // max(matching, clique cover) ≤ min
    int hi = greedy.size;         // witness in hand
    while (lo < hi) {
      // Stop the ladder on cancel/deadline: an interrupted probe reports
      // "no witness", and bisecting on that answer would both launch
      // doomed probes and tighten lo on evidence that never existed.
      if (control != nullptr &&
          control->external_stop() != vc::StopCause::kNone)
        break;
      const int mid = lo + (hi - lo) / 2;
      std::vector<Vertex> cover;
      if (probe(g, method, config, mid, result, &cover, control)) {
        result.cover = std::move(cover);
        result.best_size = static_cast<int>(result.cover.size());
        hi = std::min(mid, result.best_size);
      } else {
        lo = mid + 1;
      }
    }
    result.best_size = hi;
  }

  result.seconds = timer.seconds();
  GVC_DCHECK(static_cast<int>(result.cover.size()) == result.best_size);
  return result;
}

}  // namespace gvc::parallel
