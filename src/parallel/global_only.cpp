#include "parallel/global_only.hpp"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "parallel/node_visit.hpp"
#include "parallel/shared_state.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"
#include "worklist/global_worklist.hpp"

namespace gvc::parallel {

namespace {

using graph::CsrGraph;
using graph::Vertex;
using util::Activity;
using util::ActivityScope;
using worklist::GlobalWorklist;

}  // namespace

ParallelResult solve_global_only(const CsrGraph& g,
                                 const ParallelConfig& config,
                                 vc::SolveControl* control,
                                 SolveWorkspace* workspace) {
  util::WallTimer timer;
  ParallelResult result;

  const bool mvc = config.problem == vc::Problem::kMvc;
  GVC_CHECK_MSG(mvc || config.k > 0, "PVC requires k > 0");

  vc::GreedyResult greedy = vc::greedy_mvc(g);
  result.greedy_upper_bound = greedy.size;
  const int depth_bound = (mvc ? greedy.size : config.k) + 2;

  result.plan = device::plan_launch(config.device, g.num_vertices(),
                                    depth_bound, config.block_size_override);
  const int grid =
      config.grid_override > 0 ? config.grid_override : result.plan.grid_size;
  GVC_CHECK(grid > 0);

  SharedSearch shared(config.problem, config.k, greedy.size,
                      std::move(greedy.cover), control);

  // Note: config.branch_state is ignored here. The strawman hands BOTH
  // children to the worklist at every branch — there is no local
  // depth-first descent, so there is nothing an undo trail could roll
  // back; every child must be a self-contained snapshot regardless.
  //
  // Threshold == capacity: the donation gate never rejects below fullness,
  // so try_donate degenerates to "add unless full" — the per-node policy of
  // the strawman. rejected_full then counts exactly the explosion events.
  GlobalWorklist worklist(config.worklist_capacity, config.worklist_capacity,
                          grid);
  worklist.add(vc::DegreeArray(g));

  std::atomic<std::uint64_t> spills{0};
  if (workspace) workspace->prepare(grid);

  auto body = [&](device::BlockContext& ctx) {
    // Host-side escape hatch for a full queue; see the header comment. The
    // pure design has no per-block storage at all.
    std::vector<vc::DegreeArray> spill;
    vc::DegreeArray da;
    vc::DegreeArray child;
    vc::ReduceWorkspace local_ws;  // per-block reduce scratch (cold path)
    vc::ReduceWorkspace& ws =
        workspace ? workspace->block(ctx.block_id()) : local_ws;
    NodeBatch nodes(shared);           // batched node accounting (limits)
    device::NodeCounter visited(ctx);  // batched Fig. 5 node counting
    bool have_node = false;

    for (;;) {
      if (!mvc && shared.pvc_found()) return;
      if (shared.aborted()) {
        worklist.signal_stop();
        return;
      }

      if (!have_node) {
        if (!spill.empty()) {
          ActivityScope scope(ctx.activities(), Activity::kStackPop);
          da = std::move(spill.back());
          spill.pop_back();
        } else {
          std::uint64_t t0 = util::thread_cpu_ns();
          GlobalWorklist::RemoveOutcome out = worklist.remove(da);
          std::uint64_t elapsed = util::thread_cpu_ns() - t0;
          if (out == GlobalWorklist::RemoveOutcome::kDone) {
            ctx.activities().add(Activity::kTerminate, elapsed);
            return;
          }
          ctx.activities().add(Activity::kWorklistRemove, elapsed);
        }
        adopt_node(config, da, ws);  // fresh standalone node (spill or global)
      }
      have_node = false;

      Vertex vmax = -1;
      NodeOutcome out =
          process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
      if (out == NodeOutcome::kAbort) {
        worklist.signal_stop();
        return;
      }
      if (out == NodeOutcome::kFound && !mvc) {
        worklist.signal_stop();
        return;
      }
      if (out != NodeOutcome::kBranch) continue;

      // Branch: the strawman hands BOTH children to the worklist rather
      // than keeping one. The vmax child goes second so that under spill
      // the locally retained order still favors the deeper (neighbors)
      // branch, mirroring Fig. 4's traversal order.
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveNeighbors);
        child = da;
        child.remove_neighbors_into_solution(g, vmax);
      }
      {
        ActivityScope scope(ctx.activities(), Activity::kRemoveMaxVertex);
        da.remove_into_solution(g, vmax);
      }
      bool donated_child;
      {
        ActivityScope scope(ctx.activities(), Activity::kWorklistAdd);
        donated_child = worklist.try_donate(std::move(child));
      }
      if (!donated_child) {
        spills.fetch_add(1, std::memory_order_relaxed);
        obs::trace_instant(obs::TraceCat::kWork, "spill");
        ActivityScope scope(ctx.activities(), Activity::kStackPush);
        spill.push_back(child);
      }
      bool donated_self;
      {
        ActivityScope scope(ctx.activities(), Activity::kWorklistAdd);
        donated_self = worklist.try_donate(std::move(da));
      }
      if (!donated_self) {
        // Keep it in hand: processing it directly is cheaper than a spill
        // round-trip and keeps the loop structure of Fig. 4.
        spills.fetch_add(1, std::memory_order_relaxed);
        obs::trace_instant(obs::TraceCat::kWork, "spill");
        have_node = true;
      }
    }
  };

  device::VirtualDevice dev(config.device);
  result.launch = dev.launch(grid, /*cooperative=*/true, body);

  static_cast<vc::SolveResult&>(result) = shared.harvest();
  result.greedy_upper_bound = greedy.size;
  result.seconds = timer.seconds();
  result.sim_seconds = result.launch.makespan_seconds();
  result.worklist = worklist.stats();
  result.overflow_spills = spills.load(std::memory_order_relaxed);
  return result;
}

}  // namespace gvc::parallel
