#pragma once

// The StackOnly baseline (§V-A): sub-trees rooted at a fixed depth are
// distributed across thread blocks — one block per depth-D branch pattern,
// 2^D blocks in the grid. Each block re-descends from the root replaying
// its pattern's branch decisions (the redundant-work overhead of [15]
// discussed in §III-A), then traverses its sub-tree depth-first with a
// pre-allocated local stack. Blocks share only the atomic `best` (MVC) or
// the found-flag (PVC).

#include "graph/csr.hpp"
#include "parallel/config.hpp"

namespace gvc::parallel {

ParallelResult solve_stack_only(const graph::CsrGraph& g,
                                const ParallelConfig& config,
                                vc::SolveControl* control = nullptr,
                                SolveWorkspace* workspace = nullptr);

}  // namespace gvc::parallel
