#pragma once

// The Hybrid solver (Fig. 4) — the paper's contribution. A persistent grid
// of thread blocks each traverses a sub-tree depth-first with a local stack,
// but on every branch donates one child to the bounded global worklist while
// the worklist holds fewer than `threshold` entries. Idle blocks pop their
// local stack first and steal from the worklist second; termination is the
// all-blocks-waiting-on-empty-worklist protocol of §IV-C.

#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/steal_env.hpp"

namespace gvc::parallel {

/// `env` (optional): cross-device stealing — at a branch, when a remote
/// device advertises demand through env->broker, the materialized neighbors
/// child is exported there instead of donated to the local worklist; after
/// the launch, every migrated node is settled (executed-or-abandoned)
/// before the shared search is harvested. Null env: exact single-device
/// behavior.
ParallelResult solve_hybrid(const graph::CsrGraph& g,
                            const ParallelConfig& config,
                            vc::SolveControl* control = nullptr,
                            SolveWorkspace* workspace = nullptr,
                            const StealEnv* env = nullptr);

}  // namespace gvc::parallel
