#pragma once

// StealEnv — the cross-device stealing environment a multi-device caller
// (SolveService with steal_tiers = kJobsAndNodes) threads into solve().
//
// It is deliberately NOT a ParallelConfig field: which broker a solve
// advertises into is execution policy of the hosting service, not part of
// the request's identity, so it must stay out of the result-cache key the
// way Limits and branch_state do. A null env (the default everywhere) is
// the exact pre-existing single-device behavior.

namespace gvc::worklist {
class DeviceBroker;
}

namespace gvc::parallel {

struct StealEnv {
  /// Cross-device migration broker; never null inside a valid env.
  worklist::DeviceBroker* broker = nullptr;

  /// Device the solve runs on — exports advertise demand from OTHER
  /// devices only, and importers never take their own device's nodes.
  int device_id = 0;
};

}  // namespace gvc::parallel
