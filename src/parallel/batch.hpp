#pragma once

// Batch solving: many small instances through one VirtualDevice launch.
//
// The paper's grid model maps one block to one search; applied across a
// corpus that becomes one block per *graph* — a pooled (non-cooperative)
// launch whose resident slots drain the instance list in id order, exactly
// how a GPU scheduler drains an oversubscribed grid. Each block runs the
// Sequential engine to completion on its graph, so per-graph results are
// bit-identical to an individual Method::kSequential solve of the same
// config (the differential suite in tests/parallel/test_batch.cpp holds
// this). The win is throughput: per-block reduce scratch is pooled per
// resident *slot* (BlockContext::slot_id), so a 10k-graph batch pays for
// ~32 workspaces instead of 10k, and launch/teardown is paid once.

#include <vector>

#include "graph/csr.hpp"
#include "parallel/config.hpp"

namespace gvc::parallel {

struct BatchResult {
  /// One entry per input graph, in input order.
  std::vector<vc::SolveResult> results;

  device::LaunchPlan plan;     ///< occupancy plan sizing the resident pool
  device::LaunchStats launch;  ///< one BlockStats per graph
  double wall_seconds = 0.0;
  /// Simulated parallel time of the launch (LaunchStats::makespan_seconds).
  double sim_seconds = 0.0;

  std::uint64_t total_tree_nodes() const {
    std::uint64_t n = 0;
    for (const auto& r : results) n += r.tree_nodes;
    return n;
  }
};

/// Solves every graph in `graphs` (borrowed pointers, all non-null) in one
/// pooled launch of graphs.size() blocks. The resident-slot count comes
/// from the §IV-E occupancy plan for the largest instance in the batch
/// (config.grid_override forces it; block_size_override is forwarded).
///
/// `control` is shared by all blocks: its deadline and cancel latch stop
/// the whole batch mid-flight, while its node/time budgets apply per graph
/// (each block launches its own bounded search). Graphs stopped early carry
/// the usual limit Outcome in their slot — a batch never fails as a unit.
///
/// `workspace` pools per-slot reduce scratch across the batch (and across
/// batches, when the caller reuses it); pass nullptr to allocate per slot.
/// Not thread-safe: one (workspace, call) pair at a time.
BatchResult solve_batch(const std::vector<const graph::CsrGraph*>& graphs,
                        const ParallelConfig& config,
                        vc::SolveControl* control = nullptr,
                        SolveWorkspace* workspace = nullptr);

}  // namespace gvc::parallel
