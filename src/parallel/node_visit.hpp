#pragma once

// One branch-and-reduce node visit (Fig. 1 lines 3-19, Fig. 4 lines 7-19),
// shared by the block loops of StackOnly, Hybrid and WorkStealing — and by
// BOTH branch-state engines of each. Keeping the visit in one place is what
// guarantees a future change to the accounting, the prune bound, or the
// cover harvest cannot split the kCopy/kUndoTrail bit-identity contract:
// the engines may differ ONLY in how they carry state between visits.

#include <utility>
#include <vector>

#include "device/virtual_device.hpp"
#include "obs/trace.hpp"
#include "parallel/config.hpp"
#include "parallel/shared_state.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/reductions.hpp"

namespace gvc::parallel {

enum class NodeOutcome { kAbort, kPruned, kFound, kBranch };

/// A block picked up a root or donated node (worklist removal, steal, stack
/// pop): invalidate the workspace's cached KernelTag so the next reduce()
/// re-classifies for the adopted lineage, and rebuild/re-attach the degree
/// buckets when that max-degree backend is selected. Every pickup site of
/// the four block solvers calls this — it is the "connection time" of the
/// dispatch design (see vc/kernel_dispatch.hpp).
inline void adopt_node(const ParallelConfig& config, vc::DegreeArray& da,
                       vc::ReduceWorkspace& workspace) {
  obs::trace_instant(obs::TraceCat::kWork, "adopt", "edges", da.num_edges());
  vc::adopt_node(da, workspace, config.max_degree_backend);
}

/// One visit: account the node against the shared limits, reduce, stopping
/// condition (§II-B), cover check, branch selection. On kBranch, vmax_out
/// holds the branching vertex. On kFound the cover has already been offered
/// to (MVC) or latched in (PVC) `shared`; the caller only decides whether
/// its loop continues.
inline NodeOutcome process_node(const graph::CsrGraph& g,
                                const ParallelConfig& config,
                                SharedSearch& shared, NodeBatch& nodes,
                                device::NodeCounter& visited,
                                device::BlockContext& ctx, vc::DegreeArray& da,
                                vc::ReduceWorkspace& workspace,
                                graph::Vertex& vmax_out) {
  if (!nodes.register_node()) return NodeOutcome::kAbort;
  visited.tick();

  const bool mvc = config.problem == vc::Problem::kMvc;
  const vc::BudgetPolicy policy = mvc ? vc::BudgetPolicy::mvc(shared.best())
                                      : vc::BudgetPolicy::pvc(config.k);
  vc::reduce(g, da, policy, config.semantics, config.rules, &ctx.activities(),
             &workspace, config.kernel_dispatch);

  const std::int64_t s = da.solution_size();
  const std::int64_t e = da.num_edges();
  if (mvc) {
    const std::int64_t best = shared.best();
    if (s >= best || e > (best - s - 1) * (best - s - 1)) {
      obs::trace_instant_sampled(obs::TraceCat::kBranch, "prune", "size", s);
      return NodeOutcome::kPruned;
    }
  } else {
    const std::int64_t k = config.k;
    if (s > k || e > (k - s) * (k - s)) {
      obs::trace_instant_sampled(obs::TraceCat::kBranch, "prune", "size", s);
      return NodeOutcome::kPruned;
    }
  }

  graph::Vertex vmax;
  {
    util::ActivityScope scope(ctx.activities(), util::Activity::kFindMaxDegree);
    vmax = vc::select_branch_vertex(da, config.branch, config.branch_seed);
  }
  if (vmax < 0) {  // edgeless: cover found
    obs::trace_instant(obs::TraceCat::kBranch, "cover", "size", s);
    if (mvc)
      shared.offer_cover(da);
    else
      shared.set_pvc_found(da);
    return NodeOutcome::kFound;
  }
  obs::trace_instant_sampled(obs::TraceCat::kBranch, "branch", "v", vmax);
  vmax_out = vmax;
  return NodeOutcome::kBranch;
}

/// Runs one migrated (or reclaimed) donation snapshot to exhaustion against
/// its owning solve's SharedSearch: a self-contained copy-mode DFS built
/// from the same adopt_node()/process_node() visit the block loops use, so
/// a node that crossed a device boundary is explored under exactly the
/// owner's semantics — same prune bound (the owner's live `best`), same
/// budgets, same cover harvest. The caller provides its OWN reduce scratch
/// (an importing service worker passes its workspace; the owner's reclaim
/// path passes one of its launch's). Never re-exports: a migrated subtree
/// is drained where it landed, which is what makes the broker's
/// executed-or-abandoned accounting exact. Stops early — like any block —
/// when the shared search aborts or a PVC cover is latched.
inline void drain_subtree(const graph::CsrGraph& g,
                          const ParallelConfig& config, SharedSearch& shared,
                          vc::DegreeArray root, vc::ReduceWorkspace& ws) {
  // Instrumentation sinks: migrated nodes run outside any launch, so block
  // stats go nowhere (the service charges the wall time to its own phase
  // table); shared-node accounting still flows through NodeBatch.
  device::BlockContext ctx(/*block_id=*/0, /*sm_id=*/0);
  NodeBatch nodes(shared);
  device::NodeCounter visited(ctx);
  const bool mvc = config.problem == vc::Problem::kMvc;

  std::vector<vc::DegreeArray> stack;
  stack.push_back(std::move(root));
  while (!stack.empty()) {
    if (!mvc && shared.pvc_found()) return;
    if (shared.aborted()) return;

    vc::DegreeArray da = std::move(stack.back());
    stack.pop_back();
    adopt_node(config, da, ws);

    graph::Vertex vmax = -1;
    NodeOutcome out =
        process_node(g, config, shared, nodes, visited, ctx, da, ws, vmax);
    if (out == NodeOutcome::kAbort) return;
    if (out == NodeOutcome::kFound && !mvc) return;
    if (out != NodeOutcome::kBranch) continue;

    vc::DegreeArray child = da;
    child.remove_neighbors_into_solution(g, vmax);
    da.remove_into_solution(g, vmax);
    stack.push_back(std::move(child));
    stack.push_back(std::move(da));
  }
}

}  // namespace gvc::parallel
