#pragma once

// WorkStealing study baseline: the classic alternative to the paper's
// bounded global worklist. Every block owns a steal deque (see
// worklist/steal_deque.hpp); it traverses depth-first through the bottom of
// its own deque exactly like Hybrid traverses its local stack, but instead
// of donating branches to a shared queue, idle blocks steal the shallowest
// entry from a victim's deque, scanning victims round-robin from their own
// id.
//
// Contrasts the benches draw against Hybrid:
//  * Hybrid pays the broker queue's contention on every branch (the
//    threshold check) but donation is push-based, so work spreads ahead of
//    demand; stealing is pull-based and only moves work once a block has
//    already gone idle.
//  * Steals take the shallowest node, which is the same
//    biggest-subtree-first heuristic the worklist achieves implicitly.
//  * Termination needs a dedicated all-idle protocol (here: the same
//    waiting-count scheme as GlobalWorklist, over all deques).
//
// On the GPU this maps to per-block Chase–Lev deques in global memory; the
// paper's worklist wins on implementation simplicity and on its §IV-E
// memory argument (one bounded queue vs. N full-depth deques).

#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/steal_env.hpp"

namespace gvc::parallel {

/// `env` (optional): cross-device stealing — an advertised (or about-to-be
/// advertised) neighbors child is exported to env->broker while a remote
/// device is starved, and every migrated node is settled before the shared
/// search is harvested. Null env: exact single-device behavior.
ParallelResult solve_work_stealing(const graph::CsrGraph& g,
                                   const ParallelConfig& config,
                                   vc::SolveControl* control = nullptr,
                                   SolveWorkspace* workspace = nullptr,
                                   const StealEnv* env = nullptr);

}  // namespace gvc::parallel
