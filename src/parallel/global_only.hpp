#pragma once

// The pure-global-worklist design that §IV-A discusses (and rejects) as the
// motivation for the Hybrid approach: thread blocks are assigned single tree
// nodes instead of sub-trees, and on every branch BOTH children go back to
// the global worklist. This extracts maximal parallelism and obviates local
// stacks, but converts the traversal into a breadth-first one whose frontier
// explodes exponentially and serializes every block through the queue.
//
// We implement it as a measurable baseline so the ablation benches can put
// numbers on the two drawbacks the paper names: queue occupancy approaching
// capacity (vs. the Hybrid threshold holding it low) and the share of block
// time spent inside worklist add/remove (contention).
//
// On a real GPU a full queue would deadlock the kernel (every block stuck in
// add, none removing) or require an over-provisioned worklist. As the
// host-side escape hatch, a block whose add is rejected keeps the node on an
// unbounded per-block spill vector and drains it before touching the
// worklist again; every such event is counted in
// ParallelResult::overflow_spills, making the explosion visible instead of
// fatal.

#include "graph/csr.hpp"
#include "parallel/config.hpp"

namespace gvc::parallel {

ParallelResult solve_global_only(const graph::CsrGraph& g,
                                 const ParallelConfig& config,
                                 vc::SolveControl* control = nullptr,
                                 SolveWorkspace* workspace = nullptr);

}  // namespace gvc::parallel
