#pragma once

// Unified entry point over the code versions: the three the paper evaluates
// in §V — Sequential (single CPU thread), StackOnly (prior work's
// fixed-depth sub-tree distribution) and Hybrid (the paper's contribution) —
// plus two study baselines: GlobalOnly (the pure-worklist strawman §IV-A
// motivates Hybrid against) and WorkStealing (per-block deques with steals,
// the classic alternative load balancer).

#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/global_only.hpp"
#include "parallel/hybrid.hpp"
#include "parallel/stack_only.hpp"
#include "parallel/steal_env.hpp"
#include "parallel/work_stealing.hpp"
#include "vc/sequential.hpp"

namespace gvc::parallel {

enum class Method {
  kSequential,
  kStackOnly,
  kHybrid,
  kGlobalOnly,
  kWorkStealing,
};

const char* method_name(Method m);

/// All methods, in the order above (handy for sweeps).
const std::vector<Method>& all_methods();

/// Parses "sequential" / "stackonly" / "hybrid" / "globalonly" /
/// "workstealing" (case-insensitive). std::nullopt on anything else — for
/// tools that want to print usage instead of aborting.
std::optional<Method> try_parse_method(const std::string& name);

/// Like try_parse_method, but aborts (GVC_CHECK) on unknown names — for
/// callers where a bad name is a programming error.
Method parse_method(const std::string& name);

/// Runs the selected implementation. Sequential ignores the device/worklist
/// fields of the config; its result has empty launch/worklist stats.
///
/// `control` (optional) is the externally-owned stop handle: its node/time
/// budgets bound the solve, its deadline/cancel latch stop it mid-flight
/// from any thread, and its progress snapshot is published while the solve
/// runs. With no control the solve is unlimited and uncancellable, and
/// behaves bit-identically to a control that never fires.
///
/// Re-entrant: concurrent calls (with distinct workspaces, or none) are
/// safe — all solver state lives on the call's stack. Passing `workspace`
/// reuses its buffers instead of allocating scratch per call.
///
/// `env` (optional) is the cross-device stealing environment: when set,
/// Hybrid and WorkStealing divert branch children into its DeviceBroker
/// while remote devices advertise demand, and settle every migrated node
/// (executed-or-abandoned) before returning. The other methods ignore it.
/// Null env is bit-identical to the pre-multi-device behavior.
ParallelResult solve(const graph::CsrGraph& g, Method method,
                     const ParallelConfig& config,
                     vc::SolveControl* control = nullptr,
                     SolveWorkspace* workspace = nullptr,
                     const StealEnv* env = nullptr);

}  // namespace gvc::parallel
