#pragma once

// Unified entry point over the code versions: the three the paper evaluates
// in §V — Sequential (single CPU thread), StackOnly (prior work's
// fixed-depth sub-tree distribution) and Hybrid (the paper's contribution) —
// plus two study baselines: GlobalOnly (the pure-worklist strawman §IV-A
// motivates Hybrid against) and WorkStealing (per-block deques with steals,
// the classic alternative load balancer).

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/global_only.hpp"
#include "parallel/hybrid.hpp"
#include "parallel/stack_only.hpp"
#include "parallel/work_stealing.hpp"
#include "vc/sequential.hpp"

namespace gvc::parallel {

enum class Method {
  kSequential,
  kStackOnly,
  kHybrid,
  kGlobalOnly,
  kWorkStealing,
};

const char* method_name(Method m);

/// All methods, in the order above (handy for sweeps).
const std::vector<Method>& all_methods();

/// Parses "sequential" / "stackonly" / "hybrid" / "globalonly" /
/// "workstealing" (case-insensitive). Aborts on anything else.
Method parse_method(const std::string& name);

/// Runs the selected implementation. Sequential ignores the device/worklist
/// fields of the config; its result has empty launch/worklist stats.
///
/// Re-entrant: concurrent calls (with distinct workspaces, or none) are
/// safe — all solver state lives on the call's stack. Passing `workspace`
/// reuses its buffers instead of allocating scratch per call.
ParallelResult solve(const graph::CsrGraph& g, Method method,
                     const ParallelConfig& config,
                     SolveWorkspace* workspace = nullptr);

}  // namespace gvc::parallel
