#include "parallel/solver.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::parallel {

namespace {

// Process-wide solver-layer counters: the worklist substrate's per-solve
// stats (already merged by each solver) and the solve/tree-node totals are
// folded into the registry once per solve() — never on the node hot path.
struct SolverMetrics {
  std::shared_ptr<obs::Counter> solves;
  std::shared_ptr<obs::Counter> tree_nodes;
  std::shared_ptr<obs::Counter> worklist_adds;
  std::shared_ptr<obs::Counter> worklist_removes;
  std::shared_ptr<obs::Counter> worklist_steals;
  std::shared_ptr<obs::Counter> worklist_steal_attempts;

  static const SolverMetrics& get() {
    static const SolverMetrics* m = new SolverMetrics{
        obs::Registry::global().counter("gvc_solves_total",
                                        "parallel::solve() calls"),
        obs::Registry::global().counter("gvc_solve_tree_nodes_total",
                                        "search-tree nodes visited"),
        obs::Registry::global().counter("gvc_worklist_adds_total",
                                        "worklist adds + donations"),
        obs::Registry::global().counter("gvc_worklist_removes_total",
                                        "worklist removals"),
        obs::Registry::global().counter("gvc_worklist_steals_total",
                                        "successful cross-block steals"),
        obs::Registry::global().counter("gvc_worklist_steal_attempts_total",
                                        "steal probes of non-empty victims"),
    };
    return *m;
  }
};

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kSequential:   return "Sequential";
    case Method::kStackOnly:    return "StackOnly";
    case Method::kHybrid:       return "Hybrid";
    case Method::kGlobalOnly:   return "GlobalOnly";
    case Method::kWorkStealing: return "WorkStealing";
  }
  return "?";
}

const std::vector<Method>& all_methods() {
  static const std::vector<Method> kAll = {
      Method::kSequential, Method::kStackOnly, Method::kHybrid,
      Method::kGlobalOnly, Method::kWorkStealing};
  return kAll;
}

std::optional<Method> try_parse_method(const std::string& name) {
  std::string n = util::to_lower(name);
  if (n == "sequential" || n == "seq") return Method::kSequential;
  if (n == "stackonly" || n == "stack-only") return Method::kStackOnly;
  if (n == "hybrid") return Method::kHybrid;
  if (n == "globalonly" || n == "global-only") return Method::kGlobalOnly;
  if (n == "workstealing" || n == "work-stealing")
    return Method::kWorkStealing;
  return std::nullopt;
}

Method parse_method(const std::string& name) {
  std::optional<Method> m = try_parse_method(name);
  GVC_CHECK_MSG(m.has_value(),
                "unknown method (want "
                "sequential|stackonly|hybrid|globalonly|workstealing)");
  return *m;
}

namespace {

ParallelResult dispatch_solve(const graph::CsrGraph& g, Method method,
                              const ParallelConfig& config,
                              vc::SolveControl* control,
                              SolveWorkspace* workspace,
                              const StealEnv* env) {
  switch (method) {
    case Method::kSequential: {
      vc::SequentialConfig sc = sequential_config_of(config);
      vc::ReduceWorkspace* ws = nullptr;
      if (workspace) {
        workspace->prepare(1);
        ws = &workspace->block(0);
      }
      ParallelResult r;
      static_cast<vc::SolveResult&>(r) = solve_sequential(g, sc, control, ws);
      r.sim_seconds = r.seconds;  // one CPU thread: makespan == wall time
      return r;
    }
    case Method::kStackOnly:
      return solve_stack_only(g, config, control, workspace);
    case Method::kHybrid:
      return solve_hybrid(g, config, control, workspace, env);
    case Method::kGlobalOnly:
      return solve_global_only(g, config, control, workspace);
    case Method::kWorkStealing:
      return solve_work_stealing(g, config, control, workspace, env);
  }
  GVC_CHECK(false);
  return {};
}

}  // namespace

ParallelResult solve(const graph::CsrGraph& g, Method method,
                     const ParallelConfig& config, vc::SolveControl* control,
                     SolveWorkspace* workspace, const StealEnv* env) {
  ParallelResult result;
  {
    obs::TraceSpan span(obs::TraceCat::kSolve, method_name(method), "vertices",
                        g.num_vertices());
    result = dispatch_solve(g, method, config, control, workspace, env);
  }
  const SolverMetrics& m = SolverMetrics::get();
  m.solves->add(1);
  m.tree_nodes->add(result.tree_nodes);
  if (result.worklist.adds != 0) m.worklist_adds->add(result.worklist.adds);
  if (result.worklist.removes != 0)
    m.worklist_removes->add(result.worklist.removes);
  if (result.worklist.steals != 0)
    m.worklist_steals->add(result.worklist.steals);
  if (result.worklist.steal_attempts != 0)
    m.worklist_steal_attempts->add(result.worklist.steal_attempts);
  return result;
}

}  // namespace gvc::parallel
