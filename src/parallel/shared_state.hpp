#pragma once

// State shared by all thread blocks of one kernel launch: the atomic `best`
// (Fig. 4 line 18's atomic minimum update), the PVC found-flag (§IV-A), and
// the stop latch that consumes a vc::SolveControl — node/time budgets (the
// harness's analogue of the paper's ">2 hrs" cut-offs) plus the control's
// external deadline and cancellation latch. The first cause to fire wins
// and is reported through harvest()'s Outcome.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/timer.hpp"
#include "vc/degree_array.hpp"
#include "vc/solve_types.hpp"

namespace gvc::parallel {

class SharedSearch {
 public:
  /// `control` may be null (unlimited, uncancellable). It is observed by
  /// register_node()/register_nodes()/check_time_limit() at the same
  /// amortized cadence as the internal budgets, so a cancel() or a passed
  /// deadline stops every block within a few tree nodes.
  SharedSearch(vc::Problem problem, int k, int initial_best,
               std::vector<graph::Vertex> initial_cover,
               vc::SolveControl* control);

  vc::Problem problem() const { return problem_; }
  int k() const { return k_; }

  /// Current best cover size (MVC). Lock-free; safe from any block.
  int best() const { return best_.load(std::memory_order_acquire); }

  /// MVC: record a strictly better cover. Returns true if `da`'s solution
  /// improved the best at the moment of the call.
  bool offer_cover(const vc::DegreeArray& da);

  /// PVC: latch the first cover of size ≤ k. Idempotent; later calls lose.
  void set_pvc_found(const vc::DegreeArray& da);
  bool pvc_found() const { return pvc_found_.load(std::memory_order_acquire); }

  /// Accounts one visited tree node against the limits. Returns false once
  /// the node or time budget is exhausted (and latches aborted()).
  bool register_node();

  /// Bulk form: accounts `count` nodes with one atomic add, applying the
  /// same limit checks. Used by NodeBatch flushes.
  bool register_nodes(std::uint64_t count);

  /// Reads the clock and latches abort if the time budget, the control's
  /// deadline, or its cancel latch fired. Read-mostly — touches no shared
  /// counter unless something fires — so NodeBatch can call it between
  /// flushes without reintroducing the contended increment.
  bool check_time_limit();

  /// Whether an exact node budget is active. NodeBatch falls back to
  /// per-node accounting in that case so the limit fires at the same tree
  /// node it always did.
  bool node_limited() const { return limits_.max_tree_nodes != 0; }

  bool aborted() const {
    return stop_.load(std::memory_order_acquire) !=
           static_cast<std::uint8_t>(vc::StopCause::kNone);
  }

  /// The first cause that latched abort (kNone while running clean).
  vc::StopCause stop_cause() const {
    return static_cast<vc::StopCause>(stop_.load(std::memory_order_acquire));
  }

  std::uint64_t nodes() const { return nodes_.load(std::memory_order_relaxed); }

  /// Snapshot of the answer after the launch has completed; outcome is
  /// derived from the stop cause, the problem, and whether a witness is in
  /// hand (see vc::Outcome).
  vc::SolveResult harvest() const;

 private:
  vc::Problem problem_;
  int k_;
  vc::SolveControl* control_;  // may be null; not owned
  vc::Limits limits_;         // copied from control_ (or unlimited)
  util::WallTimer timer_;

  std::atomic<int> best_;
  std::atomic<bool> pvc_found_{false};
  /// First StopCause to fire, as its uint8_t value; kNone while running.
  std::atomic<std::uint8_t> stop_{
      static_cast<std::uint8_t>(vc::StopCause::kNone)};
  std::atomic<std::uint64_t> nodes_{0};

  mutable std::mutex mutex_;
  std::vector<graph::Vertex> best_cover_;  // guarded by mutex_
  std::vector<graph::Vertex> pvc_cover_;   // guarded by mutex_

  /// Latches `cause` if nothing latched yet; returns false (abort).
  bool latch_stop(vc::StopCause cause);

  /// Observes the control's cancel latch + deadline; latches on fire.
  /// Returns true when the search may continue.
  bool check_external();
};

/// Per-block node accounting that batches the shared atomic increment: each
/// block counts locally and flushes to SharedSearch every `flush_every`
/// nodes (and on destruction), so the per-tree-node cost in the hot loop is
/// a local increment plus one uncontended atomic load of the abort latch —
/// not a contended fetch_add across the whole grid. When an exact node
/// budget is set the batch degrades to per-node accounting so limits fire
/// at the same node they always did. The time limit is consulted every
/// kTimeCheckEvery local nodes (a clock read, no shared write) as well as
/// at every flush, so slow nodes cannot starve the deadline the way
/// flush-only checking would.
class NodeBatch {
 public:
  static constexpr std::uint32_t kDefaultFlushEvery = 32;
  static constexpr std::uint32_t kTimeCheckEvery = 8;

  explicit NodeBatch(SharedSearch& shared,
                     std::uint32_t flush_every = kDefaultFlushEvery)
      : shared_(&shared),
        flush_every_(flush_every == 0 ? 1 : flush_every),
        exact_(shared.node_limited()) {}

  NodeBatch(const NodeBatch&) = delete;
  NodeBatch& operator=(const NodeBatch&) = delete;

  ~NodeBatch() { flush(); }

  /// Accounts one tree node. Returns false once a limit latched abort.
  bool register_node() {
    if (exact_) return shared_->register_node();
    if (++pending_ >= flush_every_) {
      pending_ = 0;
      return shared_->register_nodes(flush_every_);
    }
    if (pending_ % kTimeCheckEvery == 0) return shared_->check_time_limit();
    return !shared_->aborted();
  }

  /// Pushes any locally counted nodes to the shared counter. Called from
  /// the destructor so SharedSearch::nodes() is exact once a block exits.
  void flush() {
    if (pending_ > 0) {
      shared_->register_nodes(pending_);
      pending_ = 0;
    }
  }

 private:
  SharedSearch* shared_;
  std::uint32_t pending_ = 0;
  std::uint32_t flush_every_;
  bool exact_;
};

}  // namespace gvc::parallel
