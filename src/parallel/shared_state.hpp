#pragma once

// State shared by all thread blocks of one kernel launch: the atomic `best`
// (Fig. 4 line 18's atomic minimum update), the PVC found-flag (§IV-A), and
// the limit/abort latch used by the harness to emulate the paper's ">2 hrs"
// cut-offs.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/timer.hpp"
#include "vc/degree_array.hpp"
#include "vc/solve_types.hpp"

namespace gvc::parallel {

class SharedSearch {
 public:
  SharedSearch(vc::Problem problem, int k, int initial_best,
               std::vector<graph::Vertex> initial_cover,
               const vc::Limits& limits);

  vc::Problem problem() const { return problem_; }
  int k() const { return k_; }

  /// Current best cover size (MVC). Lock-free; safe from any block.
  int best() const { return best_.load(std::memory_order_acquire); }

  /// MVC: record a strictly better cover. Returns true if `da`'s solution
  /// improved the best at the moment of the call.
  bool offer_cover(const vc::DegreeArray& da);

  /// PVC: latch the first cover of size ≤ k. Idempotent; later calls lose.
  void set_pvc_found(const vc::DegreeArray& da);
  bool pvc_found() const { return pvc_found_.load(std::memory_order_acquire); }

  /// Accounts one visited tree node against the limits. Returns false once
  /// the node or time budget is exhausted (and latches aborted()).
  bool register_node();

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  std::uint64_t nodes() const { return nodes_.load(std::memory_order_relaxed); }

  /// Snapshot of the answer after the launch has completed.
  vc::SolveResult harvest() const;

 private:
  vc::Problem problem_;
  int k_;
  vc::Limits limits_;
  util::WallTimer timer_;

  std::atomic<int> best_;
  std::atomic<bool> pvc_found_{false};
  std::atomic<bool> aborted_{false};
  std::atomic<std::uint64_t> nodes_{0};

  mutable std::mutex mutex_;
  std::vector<graph::Vertex> best_cover_;  // guarded by mutex_
  std::vector<graph::Vertex> pvc_cover_;   // guarded by mutex_
};

}  // namespace gvc::parallel
