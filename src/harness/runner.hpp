#pragma once

// Experiment driver: runs instances through the three implementations with
// budget limits (the analogue of the paper's ">2 hrs" cut-off), caches each
// instance's minimum cover size (needed to derive the PVC k = min±1 rows),
// and formats result cells.
//
// The min-cover memo is a service::ResultCache keyed by the same canonical
// graph+config hash the SolveService uses, so a Runner handed a service's
// cache warms it for subsequent service traffic (and vice versa).

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "harness/catalog.hpp"
#include "parallel/solver.hpp"
#include "service/result_cache.hpp"

namespace gvc::harness {

/// The four problem instances of Table I.
enum class ProblemInstance {
  kMvc,
  kPvcMinMinus1,
  kPvcMin,
  kPvcMinPlus1,
};

const char* problem_instance_name(ProblemInstance p);

struct RunnerOptions {
  /// Budgets applied to every run; zero = unlimited.
  vc::Limits limits;

  /// Device/worklist defaults forwarded into ParallelConfig.
  device::DeviceSpec device = device::DeviceSpec::host_scaled();
  std::size_t worklist_capacity = 4096;
  double worklist_threshold_frac = 0.5;
  int start_depth = 6;

  /// Result cache backing the min-cover memo. Null: the Runner creates a
  /// private one. Pass a SolveService's cache() to share warm entries.
  std::shared_ptr<service::ResultCache> cache;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options);

  const RunnerOptions& options() const { return options_; }

  /// The instance's minimum vertex cover size, solved once (Hybrid, verified
  /// against a Sequential run at smoke scales) and cached. Aborts if the
  /// solve hits the budget — min must be exact for the PVC rows.
  int min_cover(const Instance& inst);

  /// Runs one cell of Table I. For the PVC rows, k is derived from
  /// min_cover(inst); k = min-1 rows with min == 0 are skipped by callers.
  parallel::ParallelResult run(const Instance& inst, parallel::Method method,
                               ProblemInstance problem);

  /// Builds the ParallelConfig for a cell (exposed so ablation benches can
  /// tweak single knobs while keeping everything else identical).
  parallel::ParallelConfig make_config(ProblemInstance problem, int k) const;

  /// "1.234" for completed runs, ">limit" when the budget fired, "no" /
  /// "yes(size)" flavor is left to callers — this is the Table I time cell.
  /// Formats wall-clock seconds.
  static std::string time_cell(const parallel::ParallelResult& r);

  /// Same, but formats simulated parallel seconds (per-SM work makespan) —
  /// the primary metric for the GPU versions on this substrate.
  static std::string sim_time_cell(const parallel::ParallelResult& r);

  /// The cache backing min_cover(); shared with whoever provided it.
  const std::shared_ptr<service::ResultCache>& cache() const { return cache_; }

 private:
  RunnerOptions options_;
  std::shared_ptr<service::ResultCache> cache_;

  /// Name-keyed front memo over `cache_`: repeat min_cover() calls skip
  /// the O(|V|+|E|) canonical hash, and the answer survives even if busy
  /// shared-cache traffic LRU-evicts the full record.
  std::map<std::string, int> min_memo_;
};

}  // namespace gvc::harness
