#pragma once

// The benchmark instance catalog: one entry per Table I row of the paper,
// each generated as a structural stand-in for the original dataset (see
// DESIGN.md §2 for the substitution rationale). Three scales are provided;
// all are smaller than the paper's instances so the full suite completes on
// a laptop-class host, preserving the high-degree/low-degree split and the
// per-family density profile that drive the paper's observations.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gvc::harness {

enum class Scale {
  kSmoke,    ///< seconds-total run for CI and tests
  kDefault,  ///< minutes-total run; the scale EXPERIMENTS.md reports
  kLarge,    ///< stress run
};

/// std::nullopt on unknown names — for tools that print usage instead of
/// aborting.
std::optional<Scale> try_parse_scale(const std::string& name);

/// Aborts (GVC_CHECK) on unknown names.
Scale parse_scale(const std::string& name);

class Instance {
 public:
  Instance(std::string name, std::string family, bool high_degree,
           std::string substitution,
           std::function<graph::CsrGraph()> make);

  /// Name of the paper instance this stands in for (e.g. "p_hat_300_1").
  const std::string& name() const { return name_; }
  /// Generator family (e.g. "p_hat complement").
  const std::string& family() const { return family_; }
  /// Table I group: high average degree vs low average degree.
  bool high_degree() const { return high_degree_; }
  /// What the paper used → what this is (recorded in EXPERIMENTS.md).
  const std::string& substitution() const { return substitution_; }

  /// The graph, generated on first use and cached.
  const graph::CsrGraph& graph() const;

 private:
  std::string name_;
  std::string family_;
  bool high_degree_;
  std::string substitution_;
  std::function<graph::CsrGraph()> make_;
  mutable std::shared_ptr<graph::CsrGraph> cached_;
};

/// All 18 Table I rows at the given scale, in the paper's order
/// (13 high-degree rows, then 5 low-degree rows).
std::vector<Instance> paper_catalog(Scale scale);

/// Lookup by name; aborts if absent.
const Instance& find_instance(const std::vector<Instance>& catalog,
                              const std::string& name);

}  // namespace gvc::harness
