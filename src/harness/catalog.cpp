#include "harness/catalog.hpp"

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::harness {

using graph::CsrGraph;
using graph::Vertex;

std::optional<Scale> try_parse_scale(const std::string& name) {
  std::string n = util::to_lower(name);
  if (n == "smoke") return Scale::kSmoke;
  if (n == "default") return Scale::kDefault;
  if (n == "large") return Scale::kLarge;
  return std::nullopt;
}

Scale parse_scale(const std::string& name) {
  std::optional<Scale> s = try_parse_scale(name);
  GVC_CHECK_MSG(s.has_value(), "unknown scale (want smoke|default|large)");
  return *s;
}

Instance::Instance(std::string name, std::string family, bool high_degree,
                   std::string substitution,
                   std::function<CsrGraph()> make)
    : name_(std::move(name)),
      family_(std::move(family)),
      high_degree_(high_degree),
      substitution_(std::move(substitution)),
      make_(std::move(make)) {}

const CsrGraph& Instance::graph() const {
  if (!cached_) cached_ = std::make_shared<CsrGraph>(make_());
  return *cached_;
}

namespace {

/// Complement of a p_hat graph — the paper takes edge complements of the
/// DIMACS p_hat clique instances (§V-B). `lo`/`hi` are the propensity range
/// of the underlying clique graph: the *_1 instances are the sparsest clique
/// graphs (densest complements), *_3 the densest (sparsest complements).
CsrGraph p_hat_complement(Vertex n, double lo, double hi, std::uint64_t seed) {
  return graph::complement(graph::p_hat(n, lo, hi, seed));
}

struct Sizes {
  // p_hat family sizes standing in for n = 300/500/700/1000.
  Vertex ph300, ph500, ph700, ph1000;
  // Stand-in sizes for the KONECT/SNAP/PACE rows.
  Vertex movielens_l, movielens_r;
  std::int64_t movielens_e;
  Vertex wiki_lo, wiki_csb;
  Vertex powergrid, lastfm, sister, vc23, vc9;
};

Sizes sizes_for(Scale scale) {
  // Calibrated on a 1-core host (see bench/catalog_report): the p_hat *_2/3
  // rows land in the "hard but exactly solvable" band (1e4-1e6 tree nodes),
  // the vc-exact rows are intentionally beyond the per-cell budget for MVC /
  // k=min-1 (the paper's ">2 hrs" rows) while min itself stays computable,
  // and the remaining rows are the paper's easy/moderate mix.
  switch (scale) {
    case Scale::kSmoke:
      return Sizes{110, 140, 170, 190,
                   24, 66, 630,
                   100, 130,
                   300, 100, 400, 150, 150};
    case Scale::kDefault:
      return Sizes{130, 160, 200, 230,
                   30, 80, 990,
                   120, 160,
                   500, 120, 700, 165, 160};
    case Scale::kLarge:
      return Sizes{160, 200, 240, 280,
                   40, 110, 1800,
                   160, 200,
                   900, 160, 1100, 185, 180};
  }
  GVC_CHECK(false);
  return {};
}

}  // namespace

std::vector<Instance> paper_catalog(Scale scale) {
  const Sizes s = sizes_for(scale);
  std::vector<Instance> cat;

  auto ph = [&](const char* name, Vertex n, double lo, double hi,
                std::uint64_t seed) {
    cat.emplace_back(
        name, "p_hat complement", /*high_degree=*/true,
        util::format("DIMACS %s complement -> generated p_hat(%d, %.2f, %.2f) "
                     "complement (same two-level-density construction, scaled)",
                     name, n, lo, hi),
        [=] { return p_hat_complement(n, lo, hi, seed); });
  };

  // The *_1 clique graphs are sparse (dense complements), *_3 dense (sparse
  // complements); density bands follow the DIMACS generator settings.
  ph("p_hat_300_1", s.ph300, 0.10, 0.40, 301);
  ph("p_hat_300_2", s.ph300, 0.30, 0.70, 302);
  ph("p_hat_300_3", s.ph300, 0.50, 0.90, 303);
  ph("p_hat_500_1", s.ph500, 0.10, 0.40, 501);
  ph("p_hat_500_2", s.ph500, 0.30, 0.70, 502);
  ph("p_hat_500_3", s.ph500, 0.50, 0.90, 503);
  ph("p_hat_700_1", s.ph700, 0.10, 0.40, 701);
  ph("p_hat_700_2", s.ph700, 0.30, 0.70, 702);
  ph("p_hat_1000_1", s.ph1000, 0.10, 0.40, 1001);
  ph("p_hat_1000_2", s.ph1000, 0.30, 0.70, 1002);

  cat.emplace_back(
      "movielens-100k", "bipartite rating", /*high_degree=*/true,
      "KONECT movielens-100k_rating -> random bipartite user-item graph at "
      "the same |E|/|V| band",
      [=] { return graph::bipartite(s.movielens_l, s.movielens_r,
                                    s.movielens_e, 1101); });
  cat.emplace_back(
      "wikipedia_link_lo", "power-law", /*high_degree=*/true,
      "KONECT wikipedia_link_lo -> Barabasi-Albert power-law graph at the "
      "same |E|/|V| band",
      [=] { return graph::barabasi_albert(s.wiki_lo, 11, 1201); });
  cat.emplace_back(
      "wikipedia_link_csb", "power-law", /*high_degree=*/true,
      "KONECT wikipedia_link_csb -> Barabasi-Albert power-law graph at the "
      "same |E|/|V| band",
      [=] { return graph::barabasi_albert(s.wiki_csb, 17, 1301); });

  cat.emplace_back(
      "US_power_grid", "spatial sparse", /*high_degree=*/false,
      "KONECT opsahl-powergrid -> spanning-tree-plus-local-shortcuts graph "
      "at |E|/|V| = 1.33",
      [=] { return graph::power_grid(s.powergrid, 0.33, 1401); });
  cat.emplace_back(
      "LastFM_Asia", "small world", /*high_degree=*/false,
      "SNAP feather-lastfm-social -> Watts-Strogatz small world at the same "
      "|E|/|V| band",
      [=] { return graph::watts_strogatz(s.lastfm, 4, 0.15, 1501); });
  cat.emplace_back(
      "Sister_Cities", "spatial sparse", /*high_degree=*/false,
      "KONECT sister cities -> spanning-tree-plus-local-shortcuts graph at "
      "|E|/|V| = 1.44",
      [=] { return graph::power_grid(s.sister, 0.44, 1601); });
  cat.emplace_back(
      "vc-exact_023", "sparse random", /*high_degree=*/false,
      "PACE 2019 vc-exact_023 -> G(n,p) at |E|/|V| = 4.8",
      [=] {
        double p = 2.0 * 4.8 / static_cast<double>(s.vc23 - 1);
        return graph::gnp(s.vc23, p, 1701);
      });
  cat.emplace_back(
      "vc-exact_009", "sparse random", /*high_degree=*/false,
      "PACE 2019 vc-exact_009 -> G(n,p) at |E|/|V| = 4.5",
      [=] {
        double p = 2.0 * 4.5 / static_cast<double>(s.vc9 - 1);
        return graph::gnp(s.vc9, p, 1801);
      });

  return cat;
}

const Instance& find_instance(const std::vector<Instance>& catalog,
                              const std::string& name) {
  for (const auto& inst : catalog)
    if (inst.name() == name) return inst;
  GVC_CHECK_MSG(false, "instance not found in catalog");
  __builtin_unreachable();
}

}  // namespace gvc::harness
