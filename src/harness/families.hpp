#pragma once

// Named graph-family registry: the string interface behind the gvc_gen CLI
// tool (and anything else that wants "family name + parameters → graph"
// without hard-coding generator signatures).

#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gvc::harness {

struct FamilyParams {
  graph::Vertex n = 100;      ///< vertices (left side for bipartite)
  graph::Vertex n2 = 0;       ///< right side for bipartite (0 = n)
  double p = 0.1;             ///< edge probability (gnp), rewire beta (ws)
  double p2 = 0.5;            ///< p_hat upper probability
  int m = 2;                  ///< attachment edges (ba), ring degree (ws)
  std::int64_t edges = 0;     ///< bipartite edge count (0 = n·n2·p)
  std::uint64_t seed = 1;
  bool take_complement = false;  ///< complement the result (DIMACS style)
};

/// Family names accepted by make_family, with one-line descriptions
/// (printed by gvc_gen --list).
struct FamilyInfo {
  std::string name;
  std::string description;
};
const std::vector<FamilyInfo>& family_catalog();

/// True if `family` names a registered generator.
bool is_family(const std::string& family);

/// Builds a graph of the named family. Aborts on unknown names — the CLI
/// surfaces the list via family_catalog() first.
graph::CsrGraph make_family(const std::string& family,
                            const FamilyParams& params);

}  // namespace gvc::harness
