#pragma once

// Search-tree shape analysis — the quantitative backing for §III-B and
// Fig. 3's narrative.
//
// The paper argues that fixed-depth sub-tree distribution (StackOnly, prior
// work [14, 15]) load-imbalances because sub-trees rooted at the same depth
// have "dramatically different sizes". This module measures exactly that:
// it traverses the sequential search tree once and records, for every depth
// up to `record_max_depth`, the size of each sub-tree rooted there — i.e.
// the work each thread block would receive if the tree were split at that
// starting depth. The imbalance summaries (max/mean, coefficient of
// variation, Gini, top-share) are what bench/tree_shape_report prints.
//
// The traversal replays the Sequential solver exactly (same reduction
// semantics, same branch order, same best updates), so total node counts
// agree with solve_sequential — property-tested in tests/harness.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "vc/sequential.hpp"

namespace gvc::harness {

struct TreeShapeOptions {
  vc::SequentialConfig solver;  ///< problem/k/rules/branch, as in Fig. 1

  /// Traversal budget (SequentialConfig no longer carries limits — solves
  /// take a vc::SolveControl; the analyzer only needs the plain budgets).
  vc::Limits limits;

  /// Record sub-tree sizes for roots at depths 0..record_max_depth. The
  /// paper's StackOnly depths of interest are 8/12/16 (scaled: 4-10).
  int record_max_depth = 12;
};

/// Sub-tree size statistics for one candidate starting depth.
struct DepthSlice {
  int depth = 0;

  /// Size (node count) of each *reached* sub-tree rooted at this depth, in
  /// traversal order. Tree leaves above this depth simply contribute no
  /// slot — the paper's "TB7 does not even have a sub-tree" case.
  std::vector<std::uint64_t> subtree_sizes;

  /// 2^depth minus the reached roots: blocks that would idle from the start.
  std::uint64_t empty_slots = 0;

  // Imbalance summaries over subtree_sizes (0 when empty).
  double max_over_mean = 0.0;  ///< the paper reports 63.98x for StackOnly
  double cv = 0.0;             ///< coefficient of variation
  double gini = 0.0;           ///< 0 = perfectly even, →1 = one block owns all
  double top_share = 0.0;      ///< fraction of all nodes in the biggest sub-tree
};

struct TreeShape {
  std::uint64_t total_nodes = 0;
  int max_depth_reached = 0;
  int best_size = -1;           ///< MVC optimum (or PVC cover size / -1)
  bool timed_out = false;

  /// Node count per depth (index = depth).
  std::vector<std::uint64_t> nodes_per_depth;

  /// One slice per recorded depth, 0..record_max_depth.
  std::vector<DepthSlice> slices;
};

/// Gini coefficient of a non-negative sample (0 for empty/all-zero input).
/// Exposed for tests; also useful to summarize Fig. 5 load vectors.
double gini_coefficient(std::vector<double> xs);

/// Traverses the search tree of (g, options.solver) and returns its shape.
TreeShape analyze_tree_shape(const graph::CsrGraph& g,
                             const TreeShapeOptions& options = {});

/// Renders the top of the search tree as Graphviz DOT for inspection and
/// documentation (the Fig. 2/Fig. 3 pictures for *your* instance). Nodes
/// are visited in the Sequential order and labeled with depth, |S| and
/// |E(G')|; leaves are colored by outcome (pruned / cover found). Once
/// `max_nodes` nodes have been emitted, remaining sub-trees collapse into
/// one "⋯ N more nodes" placeholder each, so the output stays plottable
/// even for million-node trees.
std::string tree_to_dot(const graph::CsrGraph& g,
                        const TreeShapeOptions& options = {},
                        std::uint64_t max_nodes = 150);

}  // namespace gvc::harness
