#include "harness/families.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::harness {

using graph::CsrGraph;
using graph::Vertex;

const std::vector<FamilyInfo>& family_catalog() {
  static const std::vector<FamilyInfo> kFamilies = {
      {"gnp", "Erdős–Rényi G(n, p)"},
      {"p_hat", "DIMACS p_hat two-level density (p .. p2); pair with "
                "--complement for the paper's benchmark style"},
      {"ba", "Barabási–Albert preferential attachment, m edges per vertex"},
      {"ws", "Watts–Strogatz small world: ring degree m, rewire prob. p"},
      {"power_grid", "degree-bounded quasi-tree with p extra edge fraction"},
      {"bipartite", "random bipartite n × n2 with `edges` edges"},
      {"tree", "uniform random tree"},
      {"grid", "2D grid, n × n2 (n2 = n when 0)"},
      {"path", "path on n vertices"},
      {"cycle", "cycle on n vertices"},
      {"star", "star with n-1 leaves"},
      {"complete", "complete graph K_n"},
      {"petersen", "the Petersen graph (fixed 10 vertices)"},
  };
  return kFamilies;
}

bool is_family(const std::string& family) {
  const std::string f = util::to_lower(family);
  const auto& cat = family_catalog();
  return std::any_of(cat.begin(), cat.end(),
                     [&](const FamilyInfo& i) { return i.name == f; });
}

CsrGraph make_family(const std::string& family, const FamilyParams& params) {
  const std::string f = util::to_lower(family);
  const Vertex n = params.n;
  const Vertex n2 = params.n2 > 0 ? params.n2 : n;
  CsrGraph g;
  if (f == "gnp") {
    g = graph::gnp(n, params.p, params.seed);
  } else if (f == "p_hat") {
    g = graph::p_hat(n, params.p, params.p2, params.seed);
  } else if (f == "ba") {
    g = graph::barabasi_albert(n, params.m, params.seed);
  } else if (f == "ws") {
    g = graph::watts_strogatz(n, params.m, params.p, params.seed);
  } else if (f == "power_grid") {
    g = graph::power_grid(n, params.p, params.seed);
  } else if (f == "bipartite") {
    const std::int64_t edges =
        params.edges > 0
            ? params.edges
            : static_cast<std::int64_t>(static_cast<double>(n) *
                                        static_cast<double>(n2) * params.p);
    g = graph::bipartite(n, n2, edges, params.seed);
  } else if (f == "tree") {
    g = graph::random_tree(n, params.seed);
  } else if (f == "grid") {
    g = graph::grid2d(n, n2);
  } else if (f == "path") {
    g = graph::path(n);
  } else if (f == "cycle") {
    g = graph::cycle(n);
  } else if (f == "star") {
    g = graph::star(n);
  } else if (f == "complete") {
    g = graph::complete(n);
  } else if (f == "petersen") {
    g = graph::petersen();
  } else {
    GVC_CHECK_MSG(false, "unknown graph family (see family_catalog())");
  }
  if (params.take_complement) g = graph::complement(g);
  return g;
}

}  // namespace gvc::harness
