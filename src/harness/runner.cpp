#include "harness/runner.hpp"

#include "graph/ops.hpp"
#include "service/graph_hash.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::harness {

using parallel::Method;
using parallel::ParallelConfig;
using parallel::ParallelResult;

const char* problem_instance_name(ProblemInstance p) {
  switch (p) {
    case ProblemInstance::kMvc:          return "MVC";
    case ProblemInstance::kPvcMinMinus1: return "PVC k=min-1";
    case ProblemInstance::kPvcMin:       return "PVC k=min";
    case ProblemInstance::kPvcMinPlus1:  return "PVC k=min+1";
  }
  return "?";
}

Runner::Runner(RunnerOptions options) : options_(std::move(options)) {
  // One entry per catalog instance is plenty; a shared cache keeps its own
  // (typically larger) capacity.
  cache_ = options_.cache ? options_.cache
                          : std::make_shared<service::ResultCache>(64);
}

ParallelConfig Runner::make_config(ProblemInstance problem, int k) const {
  ParallelConfig c;
  c.problem = problem == ProblemInstance::kMvc ? vc::Problem::kMvc
                                               : vc::Problem::kPvc;
  // The reproduction harness measures the paper's semantics, not the
  // incremental fast path the library defaults to: sweep rules for the
  // GPU-style methods (§IV-D). run() overrides this to the textbook serial
  // rules for the Sequential baseline (§V-A). Branch state is pinned to the
  // paper's copy-on-branch self-contained nodes (§IV-B) for the same
  // reason; bench/ablation_branch_state measures what the undo trail buys.
  c.semantics = vc::ReduceSemantics::kParallelSweep;
  c.branch_state = vc::BranchStateMode::kCopy;
  c.k = k;
  c.device = options_.device;
  c.worklist_capacity = options_.worklist_capacity;
  c.worklist_threshold_frac = options_.worklist_threshold_frac;
  c.start_depth = options_.start_depth;
  return c;
}

int Runner::min_cover(const Instance& inst) {
  if (auto memo = min_memo_.find(inst.name()); memo != min_memo_.end())
    return memo->second;

  // Hybrid is the fastest implementation on hard instances; run it without
  // the cell budget (min must be exact) but with a generous safety net —
  // 20x the cell budget. Instances in the catalog are calibrated to solve
  // MVC well inside this on a laptop-class host; hitting the net means the
  // scale/host combination is wrong, so fail loudly.
  ParallelConfig c = make_config(ProblemInstance::kMvc, 0);
  vc::SolveControl net;  // 20x safety net; min must be exact
  if (options_.limits.time_limit_s > 0)
    net.limits.time_limit_s = options_.limits.time_limit_s * 20;

  // Memoized through the canonical-hash cache: a SolveService sharing this
  // cache serves the identical submission without re-solving, and an
  // earlier service/harness solve of this instance is reused here. The
  // memo is status-aware: only a complete (kOptimal) record is trusted as
  // a minimum — the cache refuses incomplete outcomes at admission, but
  // guard here too in case an entry predates that policy.
  const service::CacheKey key =
      service::make_cache_key(inst.graph(), Method::kHybrid, c);
  ParallelResult r;
  if (!cache_->lookup(key, &r) || !r.complete()) {
    r = parallel::solve(inst.graph(), Method::kHybrid, c, &net);
    GVC_CHECK_MSG(r.complete(), "min-cover solve hit the safety net");
    cache_->insert(key, r);
  }
  GVC_CHECK_MSG(graph::is_vertex_cover(inst.graph(), r.cover),
                "min-cover solve produced an invalid cover");
  min_memo_[inst.name()] = r.best_size;
  return r.best_size;
}

ParallelResult Runner::run(const Instance& inst, Method method,
                           ProblemInstance problem) {
  int k = 0;
  if (problem != ProblemInstance::kMvc) {
    int min = min_cover(inst);
    switch (problem) {
      case ProblemInstance::kPvcMinMinus1: k = min - 1; break;
      case ProblemInstance::kPvcMin:       k = min;     break;
      case ProblemInstance::kPvcMinPlus1:  k = min + 1; break;
      default: break;
    }
    GVC_CHECK_MSG(k > 0, "PVC row requires k > 0 (instance min too small)");
  }
  ParallelConfig c = make_config(problem, k);
  if (method == Method::kSequential)
    c.semantics = vc::ReduceSemantics::kSerial;
  vc::SolveControl budget(options_.limits);
  return parallel::solve(inst.graph(), method, c, &budget);
}

std::string Runner::time_cell(const ParallelResult& r) {
  if (r.limit_hit()) return ">" + std::string(vc::to_string(r.outcome));
  return util::format("%.3f", r.seconds);
}

std::string Runner::sim_time_cell(const ParallelResult& r) {
  if (r.limit_hit()) return ">" + std::string(vc::to_string(r.outcome));
  return util::format("%.4f", r.sim_seconds);
}

}  // namespace gvc::harness
