#include "harness/tree_stats.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "vc/branching.hpp"
#include "vc/greedy.hpp"
#include "vc/reductions.hpp"

namespace gvc::harness {

namespace {

using graph::CsrGraph;
using graph::Vertex;

/// One traversal replaying the Sequential solver's visit order: a node is
/// processed (reduce → prune → cover-check), then the vmax child is
/// explored before the neighbors child — the recursion of Fig. 1, which is
/// what sequential.cpp's LIFO stack realizes.
class ShapeTraversal {
 public:
  ShapeTraversal(const CsrGraph& g, const TreeShapeOptions& options,
                 TreeShape& shape)
      : g_(g), opt_(options), shape_(shape) {
    mvc_ = opt_.solver.problem == vc::Problem::kMvc;
    k_ = opt_.solver.k;
    GVC_CHECK_MSG(mvc_ || k_ > 0, "PVC requires k > 0");
    vc::GreedyResult greedy = vc::greedy_mvc(g);
    best_ = greedy.size;
    best_size_ = mvc_ ? greedy.size : -1;
    shape_.slices.resize(
        static_cast<std::size_t>(opt_.record_max_depth) + 1);
    for (int d = 0; d <= opt_.record_max_depth; ++d)
      shape_.slices[static_cast<std::size_t>(d)].depth = d;
  }

  void run() {
    visit(vc::DegreeArray(g_), 0);
    shape_.total_nodes = nodes_;
    shape_.best_size = best_size_;
    shape_.timed_out = timed_out_;
    finalize_slices();
  }

 private:
  std::uint64_t visit(vc::DegreeArray da, int depth) {
    if (timed_out_ || pvc_found_) return 0;
    if ((opt_.limits.max_tree_nodes != 0 &&
         nodes_ >= opt_.limits.max_tree_nodes) ||
        (opt_.limits.time_limit_s != 0.0 &&
         timer_.seconds() > opt_.limits.time_limit_s)) {
      timed_out_ = true;
      return 0;
    }

    ++nodes_;
    if (static_cast<std::size_t>(depth) >= shape_.nodes_per_depth.size())
      shape_.nodes_per_depth.resize(static_cast<std::size_t>(depth) + 1, 0);
    ++shape_.nodes_per_depth[static_cast<std::size_t>(depth)];
    shape_.max_depth_reached = std::max(shape_.max_depth_reached, depth);

    std::uint64_t size = 1;

    const vc::BudgetPolicy policy =
        mvc_ ? vc::BudgetPolicy::mvc(best_) : vc::BudgetPolicy::pvc(k_);
    vc::reduce(g_, da, policy, opt_.solver.semantics, opt_.solver.rules);

    const std::int64_t s = da.solution_size();
    const std::int64_t e = da.num_edges();
    const bool pruned =
        mvc_ ? (s >= best_ || e > (best_ - s - 1) * (best_ - s - 1))
             : (s > k_ || e > (k_ - s) * (k_ - s));

    if (!pruned) {
      if (e == 0) {  // cover found
        if (mvc_) {
          best_ = s;
          best_size_ = static_cast<int>(s);
        } else {
          pvc_found_ = true;
          best_size_ = static_cast<int>(s);
        }
      } else {
        const Vertex vmax = vc::select_branch_vertex(
            da, opt_.solver.branch, opt_.solver.branch_seed);
        GVC_DCHECK(vmax >= 0);
        vc::DegreeArray neighbors_child = da;
        neighbors_child.remove_neighbors_into_solution(g_, vmax);
        da.remove_into_solution(g_, vmax);
        size += visit(std::move(da), depth + 1);
        size += visit(std::move(neighbors_child), depth + 1);
      }
    }

    if (depth <= opt_.record_max_depth)
      shape_.slices[static_cast<std::size_t>(depth)].subtree_sizes.push_back(
          size);
    return size;
  }

  void finalize_slices() {
    for (DepthSlice& slice : shape_.slices) {
      const auto reached =
          static_cast<std::uint64_t>(slice.subtree_sizes.size());
      const std::uint64_t slots =
          slice.depth < 63 ? (std::uint64_t{1} << slice.depth) : 0;
      slice.empty_slots = slots > reached ? slots - reached : 0;
      if (reached == 0) continue;
      std::vector<double> xs(slice.subtree_sizes.begin(),
                             slice.subtree_sizes.end());
      const double total = [&] {
        double t = 0;
        for (double x : xs) t += x;
        return t;
      }();
      slice.max_over_mean =
          total > 0 ? util::max_of(xs) / (total / static_cast<double>(reached))
                    : 0.0;
      slice.cv = util::coeff_of_variation(xs);
      slice.gini = gini_coefficient(xs);
      slice.top_share = total > 0 ? util::max_of(xs) / total : 0.0;
    }
  }

  const CsrGraph& g_;
  const TreeShapeOptions& opt_;
  TreeShape& shape_;

  bool mvc_ = true;
  int k_ = 0;
  std::int64_t best_ = 0;
  int best_size_ = -1;
  bool pvc_found_ = false;
  bool timed_out_ = false;
  std::uint64_t nodes_ = 0;
  util::WallTimer timer_;
};

}  // namespace

double gini_coefficient(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double total = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    GVC_DCHECK(xs[i] >= 0.0);
    total += xs[i];
    weighted += static_cast<double>(i + 1) * xs[i];
  }
  if (total <= 0.0) return 0.0;
  const auto n = static_cast<double>(xs.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

TreeShape analyze_tree_shape(const graph::CsrGraph& g,
                             const TreeShapeOptions& options) {
  TreeShape shape;
  ShapeTraversal traversal(g, options, shape);
  traversal.run();
  return shape;
}

namespace {

/// Emitter for tree_to_dot: replays the Sequential traversal, writing one
/// DOT node per visit until the budget runs out, then one collapsed
/// placeholder per elided sub-tree.
class DotEmitter {
 public:
  DotEmitter(const CsrGraph& g, const TreeShapeOptions& options,
             std::uint64_t max_nodes, std::string& out)
      : g_(g), opt_(options), max_nodes_(max_nodes), out_(out) {
    mvc_ = opt_.solver.problem == vc::Problem::kMvc;
    k_ = opt_.solver.k;
    GVC_CHECK_MSG(mvc_ || k_ > 0, "PVC requires k > 0");
    best_ = vc::greedy_mvc(g).size;
  }

  void run() {
    out_ += "digraph search_tree {\n";
    out_ += "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
    visit(vc::DegreeArray(g_), 0, -1);
    out_ += "}\n";
  }

 private:
  /// Returns the sub-tree size (for collapsed placeholders).
  std::uint64_t visit(vc::DegreeArray da, int depth, std::int64_t parent) {
    if (pvc_found_) return 0;

    const vc::BudgetPolicy policy =
        mvc_ ? vc::BudgetPolicy::mvc(best_) : vc::BudgetPolicy::pvc(k_);
    vc::reduce(g_, da, policy, opt_.solver.semantics, opt_.solver.rules);

    const std::int64_t s = da.solution_size();
    const std::int64_t e = da.num_edges();
    const bool pruned =
        mvc_ ? (s >= best_ || e > (best_ - s - 1) * (best_ - s - 1))
             : (s > k_ || e > (k_ - s) * (k_ - s));
    const bool cover = !pruned && e == 0;

    const bool emit = emitted_ < max_nodes_;
    std::int64_t id = -1;
    if (emit) {
      id = static_cast<std::int64_t>(emitted_++);
      out_ += util::format(
          "  n%lld [label=\"d=%d |S|=%lld |E|=%lld\"%s];\n",
          static_cast<long long>(id), depth, static_cast<long long>(s),
          static_cast<long long>(e),
          cover ? ", style=filled, fillcolor=palegreen"
                : (pruned ? ", style=filled, fillcolor=mistyrose" : ""));
      if (parent >= 0)
        out_ += util::format("  n%lld -> n%lld;\n",
                             static_cast<long long>(parent),
                             static_cast<long long>(id));
    }

    std::uint64_t size = 1;
    if (!pruned) {
      if (cover) {
        if (mvc_)
          best_ = s;
        else
          pvc_found_ = true;
      } else {
        const Vertex vmax = vc::select_branch_vertex(
            da, opt_.solver.branch, opt_.solver.branch_seed);
        GVC_DCHECK(vmax >= 0);
        vc::DegreeArray neighbors_child = da;
        neighbors_child.remove_neighbors_into_solution(g_, vmax);
        da.remove_into_solution(g_, vmax);

        // Each child still gets traversed when the node budget is gone (the
        // best-bound updates must stay faithful), but its whole sub-tree
        // collapses into one dashed placeholder under the last emitted
        // ancestor.
        auto child = [&](vc::DegreeArray&& node) {
          const bool full_before = emitted_ >= max_nodes_;
          const std::uint64_t sz = visit(std::move(node), depth + 1, id);
          if (id >= 0 && full_before && sz > 0) {
            out_ += util::format(
                "  p%llu [label=\"... %llu more nodes\", shape=plaintext];\n"
                "  n%lld -> p%llu [style=dashed];\n",
                static_cast<unsigned long long>(placeholders_),
                static_cast<unsigned long long>(sz),
                static_cast<long long>(id),
                static_cast<unsigned long long>(placeholders_));
            ++placeholders_;
          }
          return sz;
        };
        size += child(std::move(da));
        size += child(std::move(neighbors_child));
      }
    }

    return size;
  }

  const CsrGraph& g_;
  const TreeShapeOptions& opt_;
  std::uint64_t max_nodes_;
  std::string& out_;

  bool mvc_ = true;
  int k_ = 0;
  std::int64_t best_ = 0;
  bool pvc_found_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t placeholders_ = 0;
};

}  // namespace

std::string tree_to_dot(const graph::CsrGraph& g,
                        const TreeShapeOptions& options,
                        std::uint64_t max_nodes) {
  std::string out;
  DotEmitter emitter(g, options, max_nodes, out);
  emitter.run();
  return out;
}

}  // namespace gvc::harness
