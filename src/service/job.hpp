#pragma once

// Job types of the SolveService front-end: what a caller submits (JobSpec),
// the shared completion record a worker fills in (JobState), and the handle
// the caller polls or waits on (JobTicket).
//
// A JobState is shared — by the submitting caller's ticket, by the worker
// that solves it, by the ResultCache entry that in-flight-deduplicates
// identical submissions, and by every coalesced ticket. Its mutable fields
// are guarded by its mutex; the immutable ones (spec, key, id) are set
// before the job becomes visible to any other thread.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/solver.hpp"
#include "service/graph_hash.hpp"
#include "util/timer.hpp"

namespace gvc::service {

using JobId = std::uint64_t;

/// The service's monotonic clock, in seconds. Deadlines and latency
/// accounting all live on this one clock.
inline double service_now_s() {
  return static_cast<double>(util::now_ns()) * 1e-9;
}

/// One solve request. The graph is shared, not copied: batch submitters
/// typically submit many jobs over few graphs, and the cache key pins the
/// content anyway. Use util-free aliasing (std::shared_ptr with a no-op
/// deleter) for graphs whose lifetime is managed elsewhere.
struct JobSpec {
  std::shared_ptr<const graph::CsrGraph> graph;
  parallel::Method method = parallel::Method::kHybrid;
  parallel::ParallelConfig config;

  /// Higher runs first within a worker's queue shard.
  int priority = 0;

  /// Seconds from submission after which the job is dropped instead of
  /// solved (admission rejects already-expired jobs; workers drop expired
  /// jobs at dequeue). 0 = no deadline.
  double deadline_s = 0.0;
};

enum class JobStatus {
  kQueued,    ///< admitted, waiting in a worker shard
  kRunning,   ///< a worker is solving it
  kDone,      ///< result is valid (solved, or served from cache)
  kExpired,   ///< deadline passed before a worker got to it
  kRejected,  ///< refused at admission (queue full / service shut down)
};

const char* job_status_name(JobStatus s);

inline bool is_terminal(JobStatus s) {
  return s == JobStatus::kDone || s == JobStatus::kExpired ||
         s == JobStatus::kRejected;
}

/// Shared mutable completion record of one admitted job.
class JobState {
 public:
  JobState(JobId id, JobSpec spec, CacheKey key)
      : id_(id), spec_(std::move(spec)), key_(key),
        submit_time_s_(service_now_s()) {}

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  const CacheKey& key() const { return key_; }

  /// Submission timestamp on the service clock; with spec().deadline_s it
  /// fixes the job's absolute expiry.
  double submit_time_s() const { return submit_time_s_; }

  JobStatus status() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return status_;
  }

  /// Transition kQueued -> kRunning. Returns false if the job is already
  /// terminal (e.g. rejected during shutdown).
  bool start() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_ != JobStatus::kQueued) return false;
    status_ = JobStatus::kRunning;
    return true;
  }

  /// Terminal transition; wakes every waiter. `queue_seconds` /
  /// `solve_seconds` feed the service's latency accounting.
  void finish(JobStatus status, parallel::ParallelResult result,
              double queue_seconds, double solve_seconds) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      status_ = status;
      result_ = std::move(result);
      queue_seconds_ = queue_seconds;
      solve_seconds_ = solve_seconds;
    }
    cv_.notify_all();
  }

  /// Blocks until the job is terminal; returns the final status.
  JobStatus wait() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return is_terminal(status_); });
    return status_;
  }

  /// Non-blocking: the result if terminal, nullptr otherwise. The pointer
  /// stays valid for the life of the JobState (results are written once).
  const parallel::ParallelResult* try_poll() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return is_terminal(status_) ? &result_ : nullptr;
  }

  /// Valid once terminal.
  const parallel::ParallelResult& result() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return result_;
  }

  double queue_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_seconds_;
  }
  double solve_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return solve_seconds_;
  }

 private:
  const JobId id_;
  const JobSpec spec_;
  const CacheKey key_;
  const double submit_time_s_;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::kQueued;
  parallel::ParallelResult result_;
  double queue_seconds_ = 0.0;
  double solve_seconds_ = 0.0;
};

/// The caller's handle on a submission. Tickets are value types; copies
/// share the underlying JobState.
struct JobTicket {
  std::shared_ptr<JobState> state;

  /// Served straight from a completed cache entry — no solve ran.
  bool cache_hit = false;

  /// Coalesced onto an identical in-flight job: `state` belongs to the
  /// earlier submission, and completes when its solve does. A coalesced
  /// ticket shares that owner's fate end to end — including admission
  /// failure, if the owner was still waiting on a full shard when the
  /// coalescing happened (the request-collapsing trade-off). Treat
  /// kRejected/kExpired as retryable: a resubmission re-solves, because
  /// the owner's registration is dropped from the cache on failure.
  bool coalesced = false;

  bool valid() const { return state != nullptr; }
  JobId id() const { return state ? state->id() : 0; }
};

}  // namespace gvc::service
