#pragma once

// Job types of the SolveService front-end: what a caller submits (JobSpec),
// the shared completion record a worker fills in (JobState), and the handle
// the caller polls or waits on (JobTicket).
//
// A JobState is shared — by the submitting caller's ticket, by the worker
// that solves it, by the ResultCache entry that in-flight-deduplicates
// identical submissions, and by every coalesced ticket. Its mutable fields
// are guarded by its mutex; the immutable ones (spec, key, id) are set
// before the job becomes visible to any other thread.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/corpus.hpp"
#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/solver.hpp"
#include "service/graph_hash.hpp"
#include "util/timer.hpp"

namespace gvc::service {

using JobId = std::uint64_t;

/// The service's monotonic clock, in seconds. Deadlines and latency
/// accounting all live on this one clock — the same clock SolveControl
/// deadlines use, so a queue deadline propagates into a running solve
/// without translation.
inline double service_now_s() { return vc::SolveControl::now_s(); }

/// One solve request. The graph is shared, not copied: batch submitters
/// typically submit many jobs over few graphs, and the cache key pins the
/// content anyway. Use util-free aliasing (std::shared_ptr with a no-op
/// deleter) for graphs whose lifetime is managed elsewhere.
struct JobSpec {
  std::shared_ptr<const graph::CsrGraph> graph;
  parallel::Method method = parallel::Method::kHybrid;
  parallel::ParallelConfig config;

  /// Per-solve node/time budgets, loaded into the job's SolveControl (they
  /// are execution policy, not part of the cached request identity — see
  /// solve_config_hash). Zero = unlimited.
  vc::Limits limits;

  /// Higher runs first within a worker's queue shard.
  int priority = 0;

  /// Seconds from submission after which the job is dropped instead of
  /// solved. Enforced end to end: admission rejects already-expired jobs,
  /// workers drop expired jobs at dequeue, and the absolute deadline is
  /// loaded into the job's SolveControl so a solve that dequeues in time
  /// but runs past it stops with Outcome::kDeadline. 0 = no deadline.
  double deadline_s = 0.0;

  /// Corpus chunk payload. When set, this job is a BATCH: `graph` stays
  /// null and the worker runs parallel::solve_batch over the records (one
  /// block per graph) under the job's one SolveControl. Batch jobs bypass
  /// the ResultCache — a corpus of small one-off instances would only
  /// churn it — and shard round-robin instead of by key hash. Per-graph
  /// records land in JobState::batch_results(); the ticket's
  /// ParallelResult is the chunk aggregate. Submitted via
  /// SolveService::submit_batch, not hand-built.
  std::shared_ptr<const std::vector<graph::CorpusRecord>> batch;

  bool is_batch() const { return batch != nullptr; }
};

enum class JobStatus {
  kQueued,     ///< admitted, waiting in a worker shard
  kRunning,    ///< a worker is solving it
  kDone,       ///< result is valid (solved, or served from cache)
  kExpired,    ///< deadline fired — before a worker got to it, or mid-solve
  kCancelled,  ///< JobTicket::cancel() — while queued, or mid-solve
  kRejected,   ///< refused at admission (queue full / service shut down)
};

const char* job_status_name(JobStatus s);

/// Coverless placeholder record for jobs dropped without a solve; `cause`
/// names why (kDeadline for expiries, kCancelled for cancellations and
/// admission rejections).
parallel::ParallelResult dropped_result(vc::Outcome cause);

/// Whether two requests may share one solve (in-flight coalescing). The
/// cache key identifies the *result* — and complete records are
/// budget-independent — but an in-flight solve runs under ONE control, so
/// a waiter must have asked for the same budgets: coalescing an unbounded
/// request onto a node-limited (or tightly deadlined) solve would hand it
/// a truncated answer. Relative deadlines compare as specified; two jobs
/// with the same deadline_s submitted moments apart share the earlier
/// job's absolute expiry, like every coalesced ticket shares its owner's
/// fate.
inline bool same_solve_budget(const JobSpec& a, const JobSpec& b) {
  return a.limits.max_tree_nodes == b.limits.max_tree_nodes &&
         a.limits.time_limit_s == b.limits.time_limit_s &&
         a.deadline_s == b.deadline_s;
}

inline bool is_terminal(JobStatus s) {
  return s == JobStatus::kDone || s == JobStatus::kExpired ||
         s == JobStatus::kCancelled || s == JobStatus::kRejected;
}

/// Shared mutable completion record of one admitted job.
class JobState {
 public:
  JobState(JobId id, JobSpec spec, CacheKey key)
      : id_(id), spec_(std::move(spec)), key_(key),
        control_(std::make_shared<vc::SolveControl>(spec_.limits)),
        submit_time_s_(service_now_s()) {}

  JobId id() const { return id_; }
  const JobSpec& spec() const { return spec_; }
  const CacheKey& key() const { return key_; }

  /// The job's stop handle: carries the spec's budgets, receives the
  /// absolute queue deadline at dequeue, and is the conduit through which
  /// cancel() reaches an in-flight solve. Created with the job so a
  /// cancellation can never race its existence.
  const std::shared_ptr<vc::SolveControl>& control() const {
    return control_;
  }

  /// Submission timestamp on the service clock; with spec().deadline_s it
  /// fixes the job's absolute expiry.
  double submit_time_s() const { return submit_time_s_; }

  JobStatus status() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return status_;
  }

  /// Transition kQueued -> kRunning. Returns false if the job is already
  /// terminal (e.g. rejected during shutdown, or cancelled while queued).
  bool start() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_ != JobStatus::kQueued) return false;
    status_ = JobStatus::kRunning;
    return true;
  }

  /// Requests cancellation. A queued job turns terminal (kCancelled) right
  /// here — the worker that later dequeues it sees a terminal state and
  /// skips it; waiters wake immediately. A running job is stopped through
  /// its SolveControl and reaches kCancelled when the solve returns with
  /// Outcome::kCancelled. Returns false when the job was already terminal
  /// (nothing to cancel). `placeholder` is the result record installed for
  /// the queued-cancel case.
  bool cancel(parallel::ParallelResult placeholder) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (is_terminal(status_)) return false;
    // Latch first: a job that transitions kQueued -> kRunning concurrently
    // still observes the cancel within a few tree nodes.
    control_->cancel();
    if (status_ == JobStatus::kQueued) {
      status_ = JobStatus::kCancelled;
      result_ = std::move(placeholder);
      queue_seconds_ = service_now_s() - submit_time_s_;
      e2e_seconds_ = queue_seconds_;
      auto waiters = std::move(waiters_);
      waiters_.clear();
      lock.unlock();
      cv_.notify_all();
      for (auto& w : waiters) w();
    }
    return true;
  }

  /// Terminal transition; wakes every waiter. `queue_seconds` /
  /// `solve_seconds` feed the service's latency split; the true
  /// submit→terminal wall time is stamped here (it covers admission and
  /// result-delivery overhead the split does not). No-op if a concurrent
  /// cancel() already made the job terminal.
  void finish(JobStatus status, parallel::ParallelResult result,
              double queue_seconds, double solve_seconds) {
    std::vector<std::function<void()>> waiters;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (is_terminal(status_)) return;
      status_ = status;
      result_ = std::move(result);
      queue_seconds_ = queue_seconds;
      solve_seconds_ = solve_seconds;
      e2e_seconds_ = service_now_s() - submit_time_s_;
      waiters = std::move(waiters_);
      waiters_.clear();
    }
    cv_.notify_all();
    for (auto& w : waiters) w();
  }

  /// Registers a callback fired exactly once when the job turns terminal —
  /// the async counterpart of wait(), used by the net server to push a
  /// completion event into its reactor from whichever thread performs the
  /// terminal transition (a solve worker, or the canceller for a queued
  /// job). Fires immediately — on the registering thread — when the job is
  /// already terminal. Callbacks run OUTSIDE the job mutex, so they may
  /// call back into any JobState accessor; they must not block (the worker
  /// that finished the solve is on the hook). Multicast: every registered
  /// callback fires, which is what coalesced tickets from different
  /// connections need.
  void add_waiter(std::function<void()> fn) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!is_terminal(status_)) {
        waiters_.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

  /// Blocks until the job is terminal; returns the final status.
  JobStatus wait() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return is_terminal(status_); });
    return status_;
  }

  /// Non-blocking: the result if terminal, nullptr otherwise. The pointer
  /// stays valid for the life of the JobState (results are written once).
  const parallel::ParallelResult* try_poll() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return is_terminal(status_) ? &result_ : nullptr;
  }

  /// Valid once terminal.
  const parallel::ParallelResult& result() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return result_;
  }

  /// Batch jobs: the worker stores the per-graph records here immediately
  /// before the terminal transition (so any reader that observed a
  /// terminal status sees them). Parallel to spec().batch — entry i is
  /// the solve of record i. Empty for non-batch jobs and for batch jobs
  /// dropped without a solve.
  void set_batch_results(std::vector<vc::SolveResult> results) {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_results_ = std::move(results);
  }
  const std::vector<vc::SolveResult>& batch_results() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return batch_results_;
  }

  double queue_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_seconds_;
  }
  double solve_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return solve_seconds_;
  }

  /// True submit→terminal wall time (valid once terminal). Unlike
  /// queue_seconds + solve_seconds this includes admission, cache-serve
  /// and hand-off time — for a cache hit it is the full (tiny) request
  /// latency even though no solve ran.
  double e2e_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return e2e_seconds_;
  }

 private:
  const JobId id_;
  const JobSpec spec_;
  const CacheKey key_;
  const std::shared_ptr<vc::SolveControl> control_;
  const double submit_time_s_;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::kQueued;
  std::vector<std::function<void()>> waiters_;  ///< drained at the terminal
                                                ///< transition (see above)
  parallel::ParallelResult result_;
  std::vector<vc::SolveResult> batch_results_;  ///< batch jobs only
  double queue_seconds_ = 0.0;
  double solve_seconds_ = 0.0;
  double e2e_seconds_ = 0.0;
};

/// The caller's handle on a submission. Tickets are value types; copies
/// share the underlying JobState.
struct JobTicket {
  std::shared_ptr<JobState> state;

  /// Served straight from a completed cache entry — no solve ran.
  bool cache_hit = false;

  /// Coalesced onto an identical in-flight job: `state` belongs to the
  /// earlier submission, and completes when its solve does. A coalesced
  /// ticket shares that owner's fate end to end — including admission
  /// failure, if the owner was still waiting on a full shard when the
  /// coalescing happened (the request-collapsing trade-off). Treat
  /// kRejected/kExpired as retryable: a resubmission re-solves, because
  /// the owner's registration is dropped from the cache on failure.
  bool coalesced = false;

  bool valid() const { return state != nullptr; }
  JobId id() const { return state ? state->id() : 0; }

  /// Aborts the job: queued jobs turn terminal (kCancelled) immediately;
  /// an in-flight solve is stopped through the job's SolveControl and
  /// completes with Outcome::kCancelled shortly after. Returns true if the
  /// request landed before the job was terminal. Note for coalesced
  /// tickets: the ticket shares the owner job's state, so cancelling it
  /// cancels the one solve every coalesced ticket is waiting on.
  bool cancel() const;
};

}  // namespace gvc::service
