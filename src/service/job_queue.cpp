#include "service/job_queue.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace gvc::service {

JobQueue::JobQueue(std::size_t capacity, FullPolicy policy)
    : capacity_(capacity), policy_(policy) {
  GVC_CHECK_MSG(capacity_ > 0, "JobQueue capacity must be positive");

  obs::Registry& reg = obs::Registry::global();
  auto counter = [&](const char* name, const char* help,
                     std::uint64_t Stats::* field) {
    metric_handles_.push_back(reg.counter_fn(name, help, [this, field] {
      std::lock_guard<std::mutex> lock(mutex_);
      return static_cast<double>(stats_.*field);
    }));
  };
  counter("gvc_queue_pushed_total", "jobs admitted", &Stats::pushed);
  counter("gvc_queue_popped_total", "jobs dequeued by workers",
          &Stats::popped);
  counter("gvc_queue_rejected_full_total", "pushes refused by backpressure",
          &Stats::rejected_full);
  counter("gvc_queue_rejected_expired_total",
          "pushes refused with an already-passed deadline",
          &Stats::rejected_expired);
  counter("gvc_queue_rejected_closed_total", "pushes refused after close()",
          &Stats::rejected_closed);
  counter("gvc_queue_blocked_pushes_total",
          "pushes that waited on a full queue", &Stats::blocked_pushes);
  metric_handles_.push_back(
      reg.gauge("gvc_queue_depth", "jobs currently queued", [this] {
        std::lock_guard<std::mutex> lock(mutex_);
        return static_cast<double>(heap_.size());
      }));
}

double JobQueue::now_s() { return service_now_s(); }

bool JobQueue::Entry::before(const Entry& o) const {
  if (priority != o.priority) return priority > o.priority;
  const bool a = deadline_abs > 0.0, b = o.deadline_abs > 0.0;
  if (a != b) return a;  // deadlined jobs ahead of open-ended ones
  if (a && deadline_abs != o.deadline_abs) return deadline_abs < o.deadline_abs;
  return seq < o.seq;
}

bool JobQueue::runs_later(const Entry& a, const Entry& b) {
  return b.before(a);
}

void JobQueue::heap_push(Entry e) {
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), runs_later);
}

JobQueue::Entry JobQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), runs_later);
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  return top;
}

JobQueue::PushOutcome JobQueue::push(std::shared_ptr<JobState> job,
                                     double deadline_abs) {
  GVC_CHECK(job != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    ++stats_.rejected_closed;
    return PushOutcome::kRejectedClosed;
  }
  if (deadline_abs > 0.0 && now_s() >= deadline_abs) {
    ++stats_.rejected_expired;
    return PushOutcome::kRejectedExpired;
  }
  if (heap_.size() >= capacity_) {
    if (policy_ == FullPolicy::kReject) {
      ++stats_.rejected_full;
      return PushOutcome::kRejectedFull;
    }
    ++stats_.blocked_pushes;
    // Blocked wait, re-running the FULL admission sequence on every wake.
    // Two wake sources matter here and neither may be trusted blindly:
    //
    //  * a not_full_ signal can come from a STEAL (a sibling worker
    //    draining this shard) while this shard's own worker is off
    //    stealing elsewhere — the slot is real, but by the time we wake
    //    the deadline may have lapsed or another pusher may have taken it,
    //    so capacity and deadline are both re-checked before landing;
    //  * with the shard's worker gone stealing there may be NO pop (and no
    //    signal) for an arbitrarily long time, so a deadline-carrying
    //    producer bounds its own wait and expires in place instead of
    //    sleeping past its deadline.
    for (;;) {
      bool woke_with_slot = true;
      if (deadline_abs > 0.0) {
        const double remaining = deadline_abs - now_s();
        if (remaining <= 0.0) {
          ++stats_.rejected_expired;
          // A consumed not_full_ signal may be another blocked pusher's
          // only wakeup — pass it on since we are declining the slot.
          lock.unlock();
          not_full_.notify_one();
          return PushOutcome::kRejectedExpired;
        }
        woke_with_slot = not_full_.wait_for(
            lock, std::chrono::duration<double>(remaining),
            [&] { return closed_ || heap_.size() < capacity_; });
      } else {
        not_full_.wait(lock,
                       [&] { return closed_ || heap_.size() < capacity_; });
      }
      if (closed_) {
        ++stats_.rejected_closed;
        return PushOutcome::kRejectedClosed;
      }
      if (!woke_with_slot) continue;  // deadline hit: rejected at the top
      if (deadline_abs > 0.0 && now_s() >= deadline_abs) {
        ++stats_.rejected_expired;
        lock.unlock();
        not_full_.notify_one();
        return PushOutcome::kRejectedExpired;
      }
      if (heap_.size() < capacity_) break;
    }
  }

  Entry e;
  e.priority = job->spec().priority;
  e.deadline_abs = deadline_abs;
  e.seq = next_seq_++;
  e.job = std::move(job);
  heap_push(std::move(e));
  ++stats_.pushed;
  stats_.max_size_seen = std::max(stats_.max_size_seen, heap_.size());
  lock.unlock();
  not_empty_.notify_one();
  return PushOutcome::kAccepted;
}

std::shared_ptr<JobState> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !heap_.empty(); });
  if (heap_.empty()) return nullptr;  // closed and drained
  Entry e = heap_pop();
  ++stats_.popped;
  lock.unlock();
  not_full_.notify_one();
  return std::move(e.job);
}

std::shared_ptr<JobState> JobQueue::try_pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (heap_.empty()) return nullptr;
  Entry e = heap_pop();
  ++stats_.popped;
  lock.unlock();
  not_full_.notify_one();
  return std::move(e.job);
}

std::shared_ptr<JobState> JobQueue::pop_for(double seconds,
                                            bool* closed_out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_for(lock, std::chrono::duration<double>(seconds),
                      [&] { return closed_ || !heap_.empty(); });
  if (closed_out) *closed_out = closed_;
  if (heap_.empty()) return nullptr;  // timed out, or closed and drained
  Entry e = heap_pop();
  ++stats_.popped;
  lock.unlock();
  not_full_.notify_one();
  return std::move(e.job);
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gvc::service
