#include "service/graph_hash.hpp"

#include <bit>

namespace gvc::service {

namespace {

constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ull;

// Domain separators for the two CSR arrays ("offs\0..1" / "adj\0...2" in
// big-endian ASCII). Any distinct constants work; naming them makes hash
// dumps greppable.
constexpr std::uint64_t kOffsetsTag = 0x6f66667300000001ull;
constexpr std::uint64_t kAdjacencyTag = 0x61646a0000000002ull;

/// Running fingerprint: order-sensitive fold of 64-bit words. Order
/// sensitivity is wanted — the adjacency of a CSR graph is canonically
/// sorted, so position carries structure.
class Fold {
 public:
  void add(std::uint64_t word) {
    h_ = mix64(h_ ^ word) + std::rotl(h_, 23);
  }
  void add_double(double d) { add(std::bit_cast<std::uint64_t>(d)); }
  std::uint64_t get() const { return mix64(h_); }

 private:
  std::uint64_t h_ = kSeed;
};

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += kSeed;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t canonical_csr_hash(const std::vector<std::int64_t>& offsets,
                                 const std::vector<graph::Vertex>& adjacency) {
  Fold fold;
  // Each array is framed by a domain separator and its explicit length. A
  // plain fold of the concatenated streams cannot tell where the offsets
  // end and the adjacency begins: offsets [0,1,2] + adjacency [1,0] and
  // offsets [0,1] + adjacency [2,1,0] flatten to the identical word stream
  // [0,1,2,1,0] and would alias to one cache entry. The separators make
  // the array boundary part of the fingerprint.
  fold.add(kOffsetsTag);
  fold.add(static_cast<std::uint64_t>(offsets.size()));
  for (std::int64_t o : offsets) fold.add(static_cast<std::uint64_t>(o));
  fold.add(kAdjacencyTag);
  fold.add(static_cast<std::uint64_t>(adjacency.size()));
  for (graph::Vertex u : adjacency) fold.add(static_cast<std::uint64_t>(u));
  return fold.get();
}

std::uint64_t canonical_graph_hash(const graph::CsrGraph& g) {
  return canonical_csr_hash(g.offsets(), g.adjacency());
}

std::uint64_t solve_config_hash(parallel::Method method,
                                const parallel::ParallelConfig& config) {
  Fold fold;
  fold.add(static_cast<std::uint64_t>(method));
  fold.add(static_cast<std::uint64_t>(config.problem));
  fold.add(static_cast<std::uint64_t>(config.k));
  fold.add(static_cast<std::uint64_t>(config.semantics));
  fold.add((config.rules.degree_one ? 1u : 0u) |
           (config.rules.degree_two_triangle ? 2u : 0u) |
           (config.rules.high_degree ? 4u : 0u));
  fold.add(static_cast<std::uint64_t>(config.branch));
  fold.add(config.branch_seed);
  // Limits are deliberately NOT hashed: they moved out of ParallelConfig
  // into the caller-owned SolveControl, and a cache only admits complete
  // records — which are limit-independent — so requests differing only in
  // budgets should share one entry. config.branch_state is skipped for the
  // same reason: kCopy and kUndoTrail are bit-identical by contract (the
  // differential suite enforces it), so the mode is execution policy, not
  // part of the answer's identity. config.kernel_dispatch and
  // config.max_degree_backend are skipped under the same contract: every
  // specialized reduce kernel and both max-degree backends produce
  // bit-identical trees (the dispatch differential suite enforces it), so
  // neither knob changes the answer. config.advertise_interval does NOT get
  // that exemption: finite K deterministically changes tree_nodes, the
  // worklist counters, and possibly which optimal cover is returned, so
  // records from different K values are distinct answers.
  fold.add(static_cast<std::uint64_t>(config.advertise_interval));
  fold.add(static_cast<std::uint64_t>(config.block_size_override));
  fold.add(static_cast<std::uint64_t>(config.grid_override));
  fold.add(static_cast<std::uint64_t>(config.start_depth));
  fold.add(static_cast<std::uint64_t>(config.worklist_capacity));
  fold.add_double(config.worklist_threshold_frac);

  const device::DeviceSpec& d = config.device;
  fold.add(static_cast<std::uint64_t>(d.num_sms));
  fold.add(static_cast<std::uint64_t>(d.max_threads_per_block));
  fold.add(static_cast<std::uint64_t>(d.max_threads_per_sm));
  fold.add(static_cast<std::uint64_t>(d.max_blocks_per_sm));
  fold.add(static_cast<std::uint64_t>(d.shared_mem_per_sm_bytes));
  fold.add(static_cast<std::uint64_t>(d.shared_mem_per_block_bytes));
  fold.add(static_cast<std::uint64_t>(d.global_mem_bytes));
  return fold.get();
}

CacheKey make_cache_key(const graph::CsrGraph& g, parallel::Method method,
                        const parallel::ParallelConfig& config) {
  CacheKey key;
  key.graph_hash = canonical_graph_hash(g);
  key.config_hash = solve_config_hash(method, config);
  key.num_vertices = g.num_vertices();
  key.num_edges = g.num_edges();
  return key;
}

}  // namespace gvc::service
