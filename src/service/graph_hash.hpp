#pragma once

// Canonical fingerprints for the result cache.
//
// A cache key must identify "the same solve request" across submissions that
// constructed their graphs independently. Structural CsrGraph equality would
// be exact but costs O(|E|) per probe and a full graph copy per entry; the
// cache instead keys on a 64-bit canonical hash of the raw CSR arrays — a
// domain separator, an explicit length, and every word of the offset array,
// then the same framing for the adjacency array, folded through an
// avalanche mixer — together with a hash of every result-shaping solver
// knob. The per-array framing matters: a fold of the bare concatenation
// cannot tell where the offsets end and the adjacency begins, so two
// different graphs whose arrays flatten to the same word stream would share
// an entry (see test_graph_hash). |V| and |E| ride along in the key
// verbatim as cheap collision guards; a residual 2^-64-scale fingerprint
// collision maps distinct requests to one entry, the standard trade of
// content-hash caches.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/config.hpp"
#include "parallel/solver.hpp"

namespace gvc::service {

/// 64-bit avalanche mix (splitmix64 finalizer); the building block of the
/// fingerprints below. Exposed for tests.
std::uint64_t mix64(std::uint64_t x);

/// Canonical content hash of a labeled CsrGraph. Deterministic across
/// processes and platforms; two structurally equal graphs always hash
/// equal, and any edge/vertex difference changes the hash with
/// overwhelming probability.
std::uint64_t canonical_graph_hash(const graph::CsrGraph& g);

/// The fold underneath canonical_graph_hash, over raw CSR arrays: each
/// array is framed by a domain separator and its explicit length, so the
/// offsets/adjacency boundary is part of the fingerprint. Exposed for
/// hashing blobs that have not (yet) passed CsrGraph validation, and for
/// the collision regression test.
std::uint64_t canonical_csr_hash(const std::vector<std::int64_t>& offsets,
                                 const std::vector<graph::Vertex>& adjacency);

/// Hash of every ParallelConfig field (plus the method) that shapes the
/// result record: problem/k/rules/semantics/branch as well as the schedule
/// knobs (device, grid, worklist) — two requests differing in any of them
/// may legitimately produce different stats, so they never alias. Budgets
/// (vc::Limits) live on the caller's SolveControl, not in the config, and
/// are excluded on purpose: only complete (limit-independent) records are
/// ever cached.
std::uint64_t solve_config_hash(parallel::Method method,
                                const parallel::ParallelConfig& config);

/// The ResultCache key: graph fingerprint + config fingerprint + the two
/// verbatim size guards.
struct CacheKey {
  std::uint64_t graph_hash = 0;
  std::uint64_t config_hash = 0;
  graph::Vertex num_vertices = 0;
  std::int64_t num_edges = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    std::uint64_t h = k.graph_hash;
    h = mix64(h ^ k.config_hash);
    h = mix64(h ^ static_cast<std::uint64_t>(k.num_vertices));
    h = mix64(h ^ static_cast<std::uint64_t>(k.num_edges));
    return static_cast<std::size_t>(h);
  }
};

CacheKey make_cache_key(const graph::CsrGraph& g, parallel::Method method,
                        const parallel::ParallelConfig& config);

}  // namespace gvc::service
