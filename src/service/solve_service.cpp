#include "service/solve_service.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/batch.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace gvc::service {

const char* steal_tiers_name(StealTiers t) {
  switch (t) {
    case StealTiers::kNone:         return "none";
    case StealTiers::kJobs:         return "jobs";
    case StealTiers::kJobsAndNodes: return "jobs+nodes";
  }
  return "?";
}

std::optional<StealTiers> try_parse_steal_tiers(const std::string& name) {
  std::string n = util::to_lower(name);
  if (n == "none" || n == "off") return StealTiers::kNone;
  if (n == "jobs") return StealTiers::kJobs;
  if (n == "jobs+nodes" || n == "jobs-and-nodes" || n == "nodes")
    return StealTiers::kJobsAndNodes;
  return std::nullopt;
}

std::vector<device::DeviceSpec> SolveService::partition_device(
    const device::DeviceSpec& device, int workers) {
  GVC_CHECK(workers >= 1);
  std::vector<device::DeviceSpec> slices;
  slices.reserve(static_cast<std::size_t>(workers));
  const int base_sms = std::max(1, device.num_sms / workers);
  int remainder =
      device.num_sms > workers ? device.num_sms - base_sms * workers : 0;
  for (int w = 0; w < workers; ++w) {
    device::DeviceSpec s = device;
    s.num_sms = base_sms + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    // Global memory is space-shared like the SMs; shared memory is per-SM
    // and per-block, so those limits carry over unchanged.
    s.global_mem_bytes =
        std::max<std::int64_t>(device.global_mem_bytes / workers, 1 << 20);
    s.shared_mem_per_sm_bytes = device.shared_mem_per_sm_bytes;
    s.name = util::format("%s/slice%d", device.name.c_str(), w);
    s.validate();
    slices.push_back(std::move(s));
  }
  return slices;
}

parallel::ParallelResult dropped_result(vc::Outcome cause) {
  parallel::ParallelResult r;
  r.outcome = cause;
  r.best_size = -1;
  return r;
}

bool JobTicket::cancel() const {
  return state != nullptr &&
         state->cancel(dropped_result(vc::Outcome::kCancelled));
}

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)),
      phase_table_(std::max(1, options_.num_workers)) {
  options_.num_workers = std::max(1, options_.num_workers);
  options_.num_devices =
      std::min(std::max(1, options_.num_devices), options_.num_workers);
  options_.steal_poll_seconds = std::max(1e-4, options_.steal_poll_seconds);
  options_.corpus_chunk_size =
      std::max<std::size_t>(1, options_.corpus_chunk_size);

  obs::Registry& reg = obs::Registry::global();
  submitted_ = reg.counter("gvc_service_jobs_submitted_total",
                           "jobs submitted (incl. hits/coalesced/rejects)");
  completed_ = reg.counter("gvc_service_jobs_completed_total",
                           "jobs solved by a worker");
  cache_hits_ = reg.counter("gvc_service_cache_hits_total",
                            "submissions served from a completed entry");
  coalesced_ = reg.counter("gvc_service_jobs_coalesced_total",
                           "submissions attached to an in-flight job");
  rejected_ = reg.counter("gvc_service_jobs_rejected_total",
                          "submissions refused at admission");
  expired_ = reg.counter("gvc_service_jobs_expired_total",
                         "jobs whose deadline fired");
  cancelled_ = reg.counter("gvc_service_jobs_cancelled_total",
                           "jobs cancelled (queued or mid-solve)");
  corpus_batches_ = reg.counter("gvc_corpus_batches_total",
                                "corpus chunk jobs admitted");
  corpus_graphs_submitted_ =
      reg.counter("gvc_corpus_graphs_submitted_total",
                  "well-formed corpus graphs admitted");
  corpus_graphs_solved_ = reg.counter("gvc_corpus_graphs_solved_total",
                                      "per-graph batch records delivered");
  corpus_graphs_skipped_ =
      reg.counter("gvc_corpus_graphs_skipped_total",
                  "malformed corpus records skipped by the reader");
  queue_wait_hist_ =
      reg.histogram("gvc_service_queue_wait_seconds",
                    "submission -> dequeue (or queued drop) wall time");
  solve_hist_ = reg.histogram("gvc_service_solve_seconds",
                              "worker solve wall time");
  e2e_hist_ = reg.histogram("gvc_service_e2e_seconds",
                            "true submit -> terminal wall time");
  steal_jobs_ = reg.counter(
      "gvc_steal_jobs_total",
      "tier-1 steals: queued jobs taken from a sibling shard");
  steal_nodes_ = reg.counter(
      "gvc_steal_nodes_total",
      "tier-2 steals: migrated subtree nodes executed by a worker");
  migrate_run_hist_ =
      reg.histogram("gvc_steal_migration_run_seconds",
                    "wall time of one migrated-node run on the thief");

  cache_ = options_.cache
               ? options_.cache
               : std::make_shared<ResultCache>(options_.cache_capacity,
                                               options_.min_cache_seconds);

  // Topology. One device: workers slice the machine directly — the exact
  // pre-sharding layout (slice names included, so cache keys and test
  // expectations carry over). Multiple devices: the machine is carved into
  // device slices first, each device slice is carved across its workers
  // with the SAME partition rule, and workers map to devices contiguously
  // (the first W % D devices take the extra worker).
  const int num_workers = options_.num_workers;
  const int num_devices = options_.num_devices;
  worker_device_.assign(static_cast<std::size_t>(num_workers), 0);
  device_workers_.assign(static_cast<std::size_t>(num_devices), {});
  if (num_devices == 1) {
    device_slices_ = {options_.device};
    worker_devices_ = partition_device(options_.device, num_workers);
    for (int w = 0; w < num_workers; ++w) device_workers_[0].push_back(w);
  } else {
    device_slices_ = partition_device(options_.device, num_devices);
    worker_devices_.reserve(static_cast<std::size_t>(num_workers));
    const int base = num_workers / num_devices;
    const int extra = num_workers % num_devices;
    int w = 0;
    for (int d = 0; d < num_devices; ++d) {
      const int wpd = base + (d < extra ? 1 : 0);
      std::vector<device::DeviceSpec> slices =
          partition_device(device_slices_[static_cast<std::size_t>(d)], wpd);
      for (int j = 0; j < wpd; ++j, ++w) {
        worker_device_[static_cast<std::size_t>(w)] = d;
        device_workers_[static_cast<std::size_t>(d)].push_back(w);
        worker_devices_.push_back(std::move(slices[static_cast<std::size_t>(j)]));
      }
    }
  }
  // Tier 2 needs at least two devices (imports are cross-device only).
  if (options_.steal_tiers == StealTiers::kJobsAndNodes && num_devices > 1)
    broker_ = std::make_unique<worklist::DeviceBroker>(
        num_devices, options_.broker_capacity);

  queues_.reserve(static_cast<std::size_t>(options_.num_workers));
  jobs_per_worker_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    queues_.push_back(std::make_unique<JobQueue>(options_.queue_capacity,
                                                 options_.full_policy));
    jobs_per_worker_.push_back(
        std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

SolveService::~SolveService() { shutdown(); }

void SolveService::shutdown() {
  // Serialized: concurrent shutdown() calls (or shutdown() racing the
  // destructor) must not both reach join() on the same thread object.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (!shutdown_.exchange(true))
    for (auto& q : queues_) q->close();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

int SolveService::shard_of(const CacheKey& key) const {
  return home_shard(key, static_cast<int>(queues_.size()));
}

JobTicket SolveService::submit(JobSpec spec) {
  GVC_CHECK_MSG(spec.graph != nullptr, "JobSpec.graph must be set");
  submitted_->add();

  // Route on the submitted request, then pin the executed device: the
  // shard choice is deterministic in the submitted config, so identical
  // submissions land on the same worker and get the same slice. The cache
  // key is computed AFTER the device pin — entries must describe the
  // config that actually ran, or a cache sharer with a different worker
  // layout would be served records produced under a device its key never
  // encoded.
  CacheKey key;
  key.graph_hash = canonical_graph_hash(*spec.graph);
  key.num_vertices = spec.graph->num_vertices();
  key.num_edges = spec.graph->num_edges();
  key.config_hash = solve_config_hash(spec.method, spec.config);
  const int shard = shard_of(key);
  if (options_.partition_device) {
    spec.config.device = worker_devices_[static_cast<std::size_t>(shard)];
    key.config_hash = solve_config_hash(spec.method, spec.config);
  }
  auto state = std::make_shared<JobState>(
      next_job_id_.fetch_add(1, std::memory_order_relaxed), std::move(spec),
      key);
  obs::trace_instant(obs::TraceCat::kService, "job_submit", "job",
                     static_cast<std::int64_t>(state->id()));

  if (shutdown_.load(std::memory_order_acquire)) {
    rejected_->add();
    state->finish(JobStatus::kRejected,
                  dropped_result(vc::Outcome::kCancelled), 0.0, 0.0);
    observe_latency(state->e2e_seconds(), 0.0, 0.0,
                    /*queued=*/false, /*solved=*/false);
    return JobTicket{std::move(state)};
  }

  parallel::ParallelResult cached;
  std::shared_ptr<JobState> owner;
  switch (cache_->acquire(key, state, &cached, &owner)) {
    case ResultCache::Outcome::kHit: {
      cache_hits_->add();
      state->finish(JobStatus::kDone, std::move(cached), 0.0, 0.0);
      observe_latency(state->e2e_seconds(), 0.0, 0.0,
                      /*queued=*/false, /*solved=*/false);
      JobTicket t{std::move(state)};
      t.cache_hit = true;
      return t;
    }
    case ResultCache::Outcome::kInflight: {
      coalesced_->add();
      JobTicket t{std::move(owner)};
      t.coalesced = true;
      return t;
    }
    case ResultCache::Outcome::kMiss:
    case ResultCache::Outcome::kBypass:
      // kBypass: an identical key is in flight under different budgets —
      // this job runs its own solve. It holds no registration; the
      // owner-guarded abandon/complete calls below are no-ops for it.
      break;
  }

  const double deadline_abs =
      state->spec().deadline_s > 0.0
          ? state->submit_time_s() + state->spec().deadline_s
          : 0.0;
  const JobQueue::PushOutcome outcome =
      queues_[static_cast<std::size_t>(shard)]->push(state, deadline_abs);
  if (outcome != JobQueue::PushOutcome::kAccepted) {
    cache_->abandon(key, state.get());
    if (outcome == JobQueue::PushOutcome::kRejectedExpired) {
      expired_->add();
      state->finish(JobStatus::kExpired,
                    dropped_result(vc::Outcome::kDeadline), 0.0, 0.0);
    } else {
      rejected_->add();
      state->finish(JobStatus::kRejected,
                    dropped_result(vc::Outcome::kCancelled), 0.0, 0.0);
    }
    observe_latency(state->e2e_seconds(), 0.0, 0.0,
                    /*queued=*/false, /*solved=*/false);
  }
  return JobTicket{std::move(state)};
}

std::vector<JobTicket> SolveService::submit_all(std::vector<JobSpec> specs) {
  std::vector<JobTicket> tickets;
  tickets.reserve(specs.size());
  for (auto& spec : specs) tickets.push_back(submit(std::move(spec)));
  return tickets;
}

JobTicket SolveService::submit_batch_job(JobSpec spec) {
  GVC_CHECK_MSG(spec.batch && !spec.batch->empty(),
                "batch job without records");
  submitted_->add();
  corpus_batches_->add();
  corpus_graphs_submitted_->add(spec.batch->size());

  // Batch jobs don't go through the ResultCache (a corpus of one-off small
  // instances would only churn it), so there is no content key to pin a
  // shard with: spread chunks round-robin instead. The executed device is
  // still the target worker's slice.
  const int shard = static_cast<int>(
      next_batch_shard_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint64_t>(queues_.size()));
  if (options_.partition_device)
    spec.config.device = worker_devices_[static_cast<std::size_t>(shard)];
  auto state = std::make_shared<JobState>(
      next_job_id_.fetch_add(1, std::memory_order_relaxed), std::move(spec),
      CacheKey{});
  obs::trace_instant(obs::TraceCat::kService, "batch_submit", "job",
                     static_cast<std::int64_t>(state->id()));

  if (shutdown_.load(std::memory_order_acquire)) {
    rejected_->add();
    state->finish(JobStatus::kRejected,
                  dropped_result(vc::Outcome::kCancelled), 0.0, 0.0);
    observe_latency(state->e2e_seconds(), 0.0, 0.0,
                    /*queued=*/false, /*solved=*/false);
    return JobTicket{std::move(state)};
  }

  const double deadline_abs =
      state->spec().deadline_s > 0.0
          ? state->submit_time_s() + state->spec().deadline_s
          : 0.0;
  const JobQueue::PushOutcome outcome =
      queues_[static_cast<std::size_t>(shard)]->push(state, deadline_abs);
  if (outcome != JobQueue::PushOutcome::kAccepted) {
    if (outcome == JobQueue::PushOutcome::kRejectedExpired) {
      expired_->add();
      state->finish(JobStatus::kExpired,
                    dropped_result(vc::Outcome::kDeadline), 0.0, 0.0);
    } else {
      rejected_->add();
      state->finish(JobStatus::kRejected,
                    dropped_result(vc::Outcome::kCancelled), 0.0, 0.0);
    }
    observe_latency(state->e2e_seconds(), 0.0, 0.0,
                    /*queued=*/false, /*solved=*/false);
  }
  return JobTicket{std::move(state)};
}

CorpusSubmission SolveService::submit_batch(graph::CorpusReader& stream,
                                            const CorpusOptions& options) {
  CorpusSubmission submission;
  const std::size_t chunk_size = options_.corpus_chunk_size;
  const std::size_t skips_before = stream.skips().size();

  auto flush = [&](std::vector<graph::CorpusRecord> chunk) {
    JobSpec spec;
    spec.config = options.config;
    spec.limits = options.limits;
    spec.priority = options.priority;
    spec.deadline_s = options.deadline_s;
    spec.batch = std::make_shared<const std::vector<graph::CorpusRecord>>(
        std::move(chunk));
    submission.graphs_submitted +=
        static_cast<long long>(spec.batch->size());
    submission.tickets.push_back(submit_batch_job(std::move(spec)));
  };

  std::vector<graph::CorpusRecord> chunk;
  chunk.reserve(chunk_size);
  while (auto rec = stream.next()) {
    chunk.push_back(std::move(*rec));
    if (chunk.size() >= chunk_size) {
      // submit_batch_job blocks on a full shard under kBlock — that
      // backpressure is what paces the stream read.
      flush(std::move(chunk));
      chunk = {};
      chunk.reserve(chunk_size);
    }
  }
  if (!chunk.empty()) flush(std::move(chunk));

  // Everything the reader skipped while we drained it is this
  // submission's skip set (the reader accumulates across its lifetime,
  // so only count from where this call started).
  submission.skips.assign(stream.skips().begin() +
                              static_cast<std::ptrdiff_t>(skips_before),
                          stream.skips().end());
  corpus_graphs_skipped_->add(submission.skips.size());
  return submission;
}

const parallel::ParallelResult& SolveService::wait(
    const JobTicket& ticket) const {
  GVC_CHECK_MSG(ticket.valid(), "wait() on an invalid ticket");
  ticket.state->wait();
  return ticket.state->result();
}

const parallel::ParallelResult* SolveService::try_poll(
    const JobTicket& ticket) const {
  GVC_CHECK_MSG(ticket.valid(), "try_poll() on an invalid ticket");
  return ticket.state->try_poll();
}

void SolveService::observe_latency(double e2e_s, double queue_s,
                                   double solve_s, bool queued, bool solved) {
  e2e_hist_->observe_seconds(e2e_s);
  if (queued) queue_wait_hist_->observe_seconds(queue_s);
  if (solved) solve_hist_->observe_seconds(solve_s);
}

void SolveService::worker_loop(int w) {
  obs::set_thread_label(util::format("svc-worker-%d", w));

  // The worker's cross-job solver scratch: reduce workspaces stay warm
  // from one job to the next, trimmed after each job to a pool bound that
  // covers every resident-grid size this substrate plans (so a one-off
  // huge StackOnly grid doesn't pin 2^start_depth |V|-sized buffers).
  constexpr int kRetainedWorkspaceBlocks = 64;
  parallel::SolveWorkspace workspace;
  JobQueue& queue = *queues_[static_cast<std::size_t>(w)];
  const bool stealing = options_.steal_tiers != StealTiers::kNone;

  for (;;) {
    std::shared_ptr<JobState> job;
    if (stealing) {
      job = acquire_job_stealing(w, workspace);
    } else {
      // No stealing: the original blocking per-shard pop, untouched.
      const double idle_from_s = service_now_s();
      job = queue.pop();
      phase_table_.add(w, obs::Phase::kIdle,
                       static_cast<std::uint64_t>(
                           (service_now_s() - idle_from_s) * 1e9));
    }
    if (!job) return;  // closed and drained

    const double dequeued_s = service_now_s();
    const double queue_seconds = dequeued_s - job->submit_time_s();
    const JobSpec& spec = job->spec();
    obs::trace_instant(obs::TraceCat::kService, "job_dequeue", "job",
                       static_cast<std::int64_t>(job->id()));

    const double deadline_abs =
        spec.deadline_s > 0.0 ? job->submit_time_s() + spec.deadline_s : 0.0;
    if (deadline_abs > 0.0 && dequeued_s >= deadline_abs) {
      if (!spec.is_batch()) cache_->abandon(job->key(), job.get());
      expired_->add();
      obs::trace_instant(obs::TraceCat::kService, "job_expired", "job",
                         static_cast<std::int64_t>(job->id()));
      observe_latency(service_now_s() - job->submit_time_s(), queue_seconds,
                      0.0, /*queued=*/true, /*solved=*/false);
      job->finish(JobStatus::kExpired, dropped_result(vc::Outcome::kDeadline),
                  queue_seconds, 0.0);
      continue;
    }
    // Propagate the queue deadline into the solve BEFORE start(): a job
    // that dequeues in time may no longer run arbitrarily past its
    // deadline — the control stops it mid-flight with Outcome::kDeadline.
    vc::SolveControl& control = *job->control();
    control.set_deadline(deadline_abs);
    if (!job->start()) {
      // Terminal before it ran — cancelled while queued, or rejected
      // during shutdown. Release the in-flight cache registration (unless
      // an identical later submission already adopted it) so the next
      // identical submission re-solves, and account the cancellation here:
      // the canceller flipped the status but cannot reach the counters.
      // The canceller already stamped the e2e time (cancel() turned the
      // state terminal before this dequeue), so the latency is observed
      // here — once, from the stamped values. Like the cancelled_ count,
      // the samples land when the worker drains the entry; a stats() read
      // racing the drain may not see them yet (shutdown() makes it final).
      if (!spec.is_batch()) cache_->abandon(job->key(), job.get());
      if (job->status() == JobStatus::kCancelled) {
        cancelled_->add();
        observe_latency(job->e2e_seconds(), job->queue_seconds(), 0.0,
                        /*queued=*/true, /*solved=*/false);
      }
      continue;
    }

    // The executed device was already pinned into spec.config at submit
    // (so the cache key describes exactly this run).
    parallel::ParallelResult result;
    if (spec.is_batch()) {
      obs::TraceSpan span(obs::TraceCat::kService, "batch_solve", "job",
                          static_cast<std::int64_t>(job->id()));
      std::vector<const graph::CsrGraph*> graphs;
      graphs.reserve(spec.batch->size());
      for (const auto& rec : *spec.batch) graphs.push_back(&rec.graph);
      parallel::BatchResult batch =
          parallel::solve_batch(graphs, spec.config, &control, &workspace);
      // The ticket-level record is the chunk aggregate: the first
      // non-complete outcome (external stops first, so a cancelled chunk
      // reads kCancelled), node/time totals, and the launch stats. The
      // per-graph records are published on the JobState before finish()
      // turns it terminal.
      result.outcome = vc::Outcome::kOptimal;
      for (const auto& r : batch.results) {
        if (r.outcome == vc::Outcome::kCancelled ||
            r.outcome == vc::Outcome::kDeadline) {
          result.outcome = r.outcome;
          break;
        }
        if (!r.complete() && result.outcome == vc::Outcome::kOptimal)
          result.outcome = r.outcome;
      }
      result.tree_nodes = batch.total_tree_nodes();
      result.seconds = batch.wall_seconds;
      result.sim_seconds = batch.sim_seconds;
      result.plan = batch.plan;
      result.launch = std::move(batch.launch);
      corpus_graphs_solved_->add(batch.results.size());
      job->set_batch_results(std::move(batch.results));
    } else {
      obs::TraceSpan span(obs::TraceCat::kService, "job_solve", "job",
                          static_cast<std::int64_t>(job->id()));
      // Tier 2: with a broker, the solve may divert branch children to a
      // starved remote device (and settles them before harvesting).
      parallel::StealEnv steal_env{broker_.get(), device_of_worker(w)};
      result = parallel::solve(*spec.graph, spec.method, spec.config,
                               &control, &workspace,
                               broker_ ? &steal_env : nullptr);
    }
    const double solve_seconds = service_now_s() - dequeued_s;

    // Fold the solve's own activity profile into this worker's phase
    // split. The blocks ran on the launch's simulated-SM threads, so this
    // is CPU work attributed to the worker that drove the launch; solvers
    // that report no block activity — Sequential's direct path, and batch
    // launches whose blocks are Sequential engines — book their wall time
    // as kOther so the table still accounts every solve.
    if (result.launch.blocks.empty() ||
        result.launch.merged_activities().total_ns() == 0) {
      phase_table_.add(w, obs::Phase::kOther,
                       static_cast<std::uint64_t>(solve_seconds * 1e9));
    } else {
      phase_table_.add_activities(w, result.launch.merged_activities());
    }

    // Cache admission is the ResultCache's policy now (see complete()):
    // incomplete records — limit hits, kDeadline, kCancelled — are refused
    // (load-dependent, not canonical), as are sub-min_cache_seconds
    // solves; a refusal drops this job's in-flight registration so the
    // next identical submission re-solves. Already-coalesced tickets
    // still get this result through the shared JobState. Batch jobs hold
    // no registration and store nothing.
    if (!spec.is_batch()) {
      const double cache_from_s = service_now_s();
      cache_->complete(job->key(), result, job.get());
      phase_table_.add(w, obs::Phase::kCache,
                       static_cast<std::uint64_t>(
                           (service_now_s() - cache_from_s) * 1e9));
    }
    workspace.trim(kRetainedWorkspaceBlocks);
    jobs_per_worker_[static_cast<std::size_t>(w)]->fetch_add(
        1, std::memory_order_relaxed);

    // Status taxonomy: external stops keep their own terminal status (and
    // their own counters — cancellations are not expiries); everything
    // else, complete or limit-hit, is a normally-delivered result.
    JobStatus status = JobStatus::kDone;
    if (result.outcome == vc::Outcome::kCancelled) {
      status = JobStatus::kCancelled;
      cancelled_->add();
    } else if (result.outcome == vc::Outcome::kDeadline) {
      status = JobStatus::kExpired;
      expired_->add();
    } else {
      completed_->add();
    }
    obs::trace_instant(obs::TraceCat::kService, job_status_name(status),
                       "job", static_cast<std::int64_t>(job->id()));
    observe_latency(service_now_s() - job->submit_time_s(), queue_seconds,
                    solve_seconds, /*queued=*/true, /*solved=*/true);
    job->finish(status, std::move(result), queue_seconds, solve_seconds);
  }
}

std::shared_ptr<JobState> SolveService::acquire_job_stealing(
    int w, parallel::SolveWorkspace& workspace) {
  JobQueue& own = *queues_[static_cast<std::size_t>(w)];
  const int dev = worker_device_[static_cast<std::size_t>(w)];
  const std::vector<int>& siblings =
      device_workers_[static_cast<std::size_t>(dev)];

  // Everything here is waiting (kIdle) except migrated-node runs (kSteal).
  double idle_from_s = service_now_s();
  auto book_idle = [&] {
    const double now = service_now_s();
    phase_table_.add(w, obs::Phase::kIdle,
                     static_cast<std::uint64_t>((now - idle_from_s) * 1e9));
    idle_from_s = now;
  };

  for (;;) {
    // Own shard outranks everything (keeps the key->shard affinity warm).
    if (std::shared_ptr<JobState> job = own.try_pop()) {
      book_idle();
      return job;
    }

    // Tier 1: drain a sibling shard on this device. The stolen job runs
    // the config it was pinned at admission — its cache key already
    // describes that slice, so executing it here changes nothing the key
    // encodes.
    for (int s : siblings) {
      if (s == w) continue;
      if (std::shared_ptr<JobState> job =
              queues_[static_cast<std::size_t>(s)]->try_pop()) {
        steal_jobs_->add();
        obs::trace_instant(obs::TraceCat::kService, "job_steal", "from",
                           static_cast<std::int64_t>(s));
        book_idle();
        return job;
      }
    }

    // Tier 2: run ONE migrated subtree node from a solve on another
    // device, then rescan the queues — whole jobs outrank more imports.
    if (broker_) {
      worklist::DeviceBroker::Import im;
      if (broker_->try_import(dev, im)) {
        book_idle();
        const double run_from_s = service_now_s();
        workspace.prepare(1);
        {
          obs::TraceSpan span(obs::TraceCat::kService, "migrated_node_run",
                              "from", static_cast<std::int64_t>(
                                          im.source_device()));
          im.run(workspace.block(0));
        }
        const double run_s = service_now_s() - run_from_s;
        steal_nodes_->add();
        migrate_run_hist_->observe_seconds(run_s);
        phase_table_.add(w, obs::Phase::kSteal,
                         static_cast<std::uint64_t>(run_s * 1e9));
        idle_from_s = service_now_s();
        continue;
      }
    }

    // Nothing anywhere: bounded sleep on the own shard, registered hungry
    // so solves on other devices see this device's demand meanwhile.
    if (broker_) broker_->enter_hungry(dev);
    bool closed = false;
    std::shared_ptr<JobState> job =
        own.pop_for(options_.steal_poll_seconds, &closed);
    if (broker_) broker_->leave_hungry(dev);
    if (job) {
      book_idle();
      return job;
    }
    if (closed) {
      // Own shard closed AND empty (pop_for would have returned a job
      // otherwise): exit. Sibling leftovers belong to their own workers,
      // which only exit once their shard is drained too.
      book_idle();
      return nullptr;
    }
  }
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = submitted_->value();
  s.completed = completed_->value();
  s.cache_hits = cache_hits_->value();
  s.coalesced = coalesced_->value();
  s.rejected = rejected_->value();
  s.expired = expired_->value();
  s.cancelled = cancelled_->value();
  s.corpus_batches = corpus_batches_->value();
  s.corpus_graphs_submitted = corpus_graphs_submitted_->value();
  s.corpus_graphs_solved = corpus_graphs_solved_->value();
  s.corpus_graphs_skipped = corpus_graphs_skipped_->value();
  s.steal_jobs = steal_jobs_->value();
  s.steal_nodes = steal_nodes_->value();
  if (broker_) s.broker = broker_->stats();
  s.cache = cache_->stats();
  s.queues.reserve(queues_.size());
  for (const auto& q : queues_) s.queues.push_back(q->stats());
  s.jobs_per_worker.reserve(jobs_per_worker_.size());
  for (const auto& c : jobs_per_worker_)
    s.jobs_per_worker.push_back(c->load(std::memory_order_relaxed));
  s.queue_wait = queue_wait_hist_->snapshot();
  s.solve_latency = solve_hist_->snapshot();
  s.e2e_latency = e2e_hist_->snapshot();
  s.worker_phases.reserve(static_cast<std::size_t>(phase_table_.slots()));
  for (int w = 0; w < phase_table_.slots(); ++w)
    s.worker_phases.push_back(phase_table_.snapshot(w));
  return s;
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued:   return "queued";
    case JobStatus::kRunning:  return "running";
    case JobStatus::kDone:      return "done";
    case JobStatus::kExpired:   return "expired";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kRejected:  return "rejected";
  }
  return "?";
}

}  // namespace gvc::service
