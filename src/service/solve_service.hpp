#pragma once

// SolveService — the concurrent multi-instance front-end over the five
// solvers. Where the Hybrid kernel keeps one search tree's blocks saturated
// on one device, the service keeps one machine saturated across many solve
// requests:
//
//  * submit() hashes the request into a canonical CacheKey and consults the
//    ResultCache: a completed identical request is served instantly, an
//    identical request already in flight coalesces (one solve, many
//    tickets), and a genuinely new request is admitted to a worker shard.
//
//  * Jobs are pinned to workers by key hash, so a request always lands on
//    the same shard and each shard's JobQueue provides priority/deadline
//    ordering plus bounded backpressure independently.
//
//  * Each worker thread owns a DeviceSpec slice — the machine's virtual
//    device is partitioned SM-wise across workers, mirroring how a
//    multi-tenant GPU is space-shared — and a SolveWorkspace reused across
//    jobs, so steady-state job execution performs no cold-start scratch
//    allocation.
//
//  * wait()/try_poll() deliver the exact ParallelResult record a direct
//    parallel::solve() call would produce (the solve IS a direct call, made
//    re-entrant by the workspace refactor); cached and coalesced tickets
//    return the record of the first completed identical submission.
//
//  * With num_devices > 1 the machine is first split into device slices
//    (virtual GPUs), workers are pinned to (device, shard) pairs, and two
//    work-conserving steal tiers keep a skewed load from stranding a
//    device: an idle worker first drains queued jobs from sibling shards
//    on ITS OWN device (tier 1 — the stolen job executes the config it was
//    pinned at admission, so the cache key still describes the run), and a
//    starved DEVICE imports branch-tree nodes from solves running on other
//    devices through a worklist::DeviceBroker (tier 2). Both tiers are off
//    by default (StealTiers::kNone), in which case behavior is identical
//    to the single-device service.
//
// Thread safety: every public method may be called from any thread.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "device/device_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "parallel/solver.hpp"
#include "service/job.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "worklist/device_broker.hpp"

namespace gvc::service {

/// Which steal tiers an idle worker escalates through before sleeping.
enum class StealTiers {
  kNone,          ///< no stealing: each worker blocks on its own shard
  kJobs,          ///< tier 1 only: steal queued jobs from sibling shards
                  ///< on the same device
  kJobsAndNodes,  ///< tiers 1+2: also import migrated subtree nodes from
                  ///< solves running on OTHER devices (DeviceBroker)
};

const char* steal_tiers_name(StealTiers t);
std::optional<StealTiers> try_parse_steal_tiers(const std::string& name);

struct ServiceOptions {
  /// Worker threads (= queue shards = worker device slices). Clamped
  /// to >= 1, and to >= num_devices (every device gets a worker).
  int num_workers = 4;

  /// Virtual devices the machine is split into. 1 keeps the flat layout
  /// (workers slice `device` directly); N > 1 first carves `device` into N
  /// device slices, then carves each device slice across its workers.
  /// Workers map to devices contiguously (worker w's device is fixed at
  /// construction; see device_of_worker()). Clamped to [1, num_workers].
  int num_devices = 1;

  /// Work-conserving stealing for idle workers. kNone reproduces the
  /// pre-sharding service exactly (blocking per-shard pops, no broker).
  StealTiers steal_tiers = StealTiers::kNone;

  /// With stealing on: how long an everything-empty worker sleeps on its
  /// own shard before rescanning steal targets. Small enough that remote
  /// demand is noticed promptly, large enough not to spin.
  double steal_poll_seconds = 0.002;

  /// Tier-2 broker: max migrated nodes parked cross-device at once.
  std::size_t broker_capacity = 64;

  /// Per-shard JobQueue capacity.
  std::size_t queue_capacity = 256;

  /// What a submit against a full shard does: block the submitter
  /// (backpressure) or reject the job.
  JobQueue::FullPolicy full_policy = JobQueue::FullPolicy::kBlock;

  /// Completed-entry capacity of the ResultCache (ignored when `cache` is
  /// provided).
  std::size_t cache_capacity = 1024;

  /// Cost-aware cache admission (ignored when `cache` is provided): solves
  /// cheaper than this many seconds are not stored, so floods of tiny
  /// instances cannot evict expensive records. 0 keeps the old
  /// store-everything behavior.
  double min_cache_seconds = 0.0;

  /// Share an external cache (e.g. one a harness::Runner already warmed).
  /// Null: the service creates its own.
  std::shared_ptr<ResultCache> cache;

  /// The machine's virtual device, partitioned across workers when
  /// `partition_device` is set.
  device::DeviceSpec device = device::DeviceSpec::host_scaled();

  /// Graphs per batch job for submit_batch(): each chunk of this many
  /// corpus records becomes ONE queued job (one solve_batch launch). Small
  /// chunks spread a corpus across workers; large chunks amortize launch
  /// overhead harder. Clamped to >= 1.
  std::size_t corpus_chunk_size = 256;

  /// true: the submitted config's device is replaced at admission by the
  /// target worker's SM slice of `device` (space-sharing; jobs on
  /// different workers don't oversubscribe the host). The cache key is
  /// computed from the config as executed, slice included, so cached
  /// records always describe the device they ran on. false: every job
  /// runs with the device spec it was submitted with — required when
  /// results must be bit-identical to direct solve() calls of that
  /// config, or when sharing the cache with a direct-call memoizer
  /// (harness::Runner) whose entries are keyed on unsliced devices.
  bool partition_device = true;
};

// A point-in-time view over the service's registry collectors. The scalar
// counters below read the service's OWN obs::Counter handles — two
// services in one process see only their own numbers here, while
// obs::Registry::global() scrapes the per-name fleet sums.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< solved by a worker
  std::uint64_t cache_hits = 0;  ///< served instantly from the cache
  std::uint64_t coalesced = 0;   ///< attached to an in-flight identical job
  std::uint64_t rejected = 0;    ///< refused at admission
  std::uint64_t expired = 0;     ///< deadline fired: at admission, at
                                 ///< dequeue, or mid-solve (kDeadline)
  std::uint64_t cancelled = 0;   ///< JobTicket::cancel(): queued or
                                 ///< mid-solve (kCancelled) — counted
                                 ///< separately from expiries
  // Corpus/batch accounting (the gvc_corpus_* families). Graphs are the
  // unit here, not jobs: one batch job covers a whole chunk.
  std::uint64_t corpus_batches = 0;          ///< chunk jobs admitted
  std::uint64_t corpus_graphs_submitted = 0; ///< well-formed graphs admitted
  std::uint64_t corpus_graphs_solved = 0;    ///< per-graph records delivered
  std::uint64_t corpus_graphs_skipped = 0;   ///< malformed records skipped
                                             ///< by the corpus reader

  // Steal tiers (all zero under StealTiers::kNone).
  std::uint64_t steal_jobs = 0;   ///< tier 1: queued jobs taken from a
                                  ///< sibling shard on the same device
  std::uint64_t steal_nodes = 0;  ///< tier 2: migrated subtree nodes this
                                  ///< service's workers executed
  worklist::DeviceBroker::Stats broker;  ///< tier-2 conservation ledger

  ResultCache::Stats cache;
  std::vector<JobQueue::Stats> queues;           ///< one per shard
  std::vector<std::uint64_t> jobs_per_worker;    ///< solves executed

  /// Latency histograms (log-bucketed, bounded memory — replacing the old
  /// grow-forever sample vectors). One sample lands in `e2e_latency` per
  /// non-coalesced submission at its terminal transition; `queue_wait`
  /// gets one per job that entered a queue; `solve_latency` one per solve
  /// a worker actually ran.
  obs::Histogram::Snapshot queue_wait;
  obs::Histogram::Snapshot solve_latency;
  obs::Histogram::Snapshot e2e_latency;  ///< true submit→terminal wall time

  /// Per-worker cumulative phase split (the live Fig. 6 breakdown).
  std::vector<obs::PhaseTable::Snapshot> worker_phases;
};

/// How submit_batch() should run each graph of a corpus.
struct CorpusOptions {
  /// Solver config applied to every graph. Batch blocks run the Sequential
  /// engine (the grid model's one-block-per-search applied per instance),
  /// so the method is implicit; device/branching/reduction fields apply.
  parallel::ParallelConfig config;

  /// Per-GRAPH budgets (each block launches its own bounded search).
  vc::Limits limits;

  int priority = 0;

  /// Per-JOB deadline in seconds from its submission; a chunk whose
  /// deadline fires is dropped or stopped whole. 0 = none.
  double deadline_s = 0.0;
};

/// What submit_batch() returns: one ticket per chunk job plus the corpus
/// reader's skip diagnostics. wait() each ticket, then read per-graph
/// records from ticket.state->batch_results() (parallel to the chunk's
/// spec().batch records).
struct CorpusSubmission {
  std::vector<JobTicket> tickets;
  std::vector<graph::CorpusSkip> skips;
  long long graphs_submitted = 0;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions options);

  /// Drains admitted jobs, then joins the workers (shutdown()).
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits one job. Never blocks on the solve itself; blocks on a full
  /// shard only under FullPolicy::kBlock. The returned ticket is always
  /// valid — rejected submissions carry a terminal kRejected state.
  JobTicket submit(JobSpec spec);

  /// Admits a batch in order; returns one ticket per spec.
  std::vector<JobTicket> submit_all(std::vector<JobSpec> specs);

  /// Drains a corpus stream into batch jobs: reads records one at a time
  /// (never materializing the corpus), packs every
  /// ServiceOptions::corpus_chunk_size well-formed graphs into one queued
  /// job, and lets the shard queues' kBlock backpressure pace the read —
  /// a slow solver throttles the reader instead of ballooning memory.
  /// Malformed records are the reader's problem (skipped and counted, per
  /// graph/corpus.hpp); their diagnostics are returned and the
  /// gvc_corpus_graphs_skipped_total counter is bumped. Batch jobs bypass
  /// the ResultCache and shard round-robin.
  CorpusSubmission submit_batch(graph::CorpusReader& stream,
                                const CorpusOptions& options = {});

  /// Blocks until the ticket's job is terminal; returns its result record.
  /// For jobs dropped without a solve (kExpired at admission/dequeue,
  /// kCancelled while queued, kRejected) the record is a coverless
  /// placeholder whose outcome names the cause (kDeadline / kCancelled).
  /// A job stopped mid-solve carries the real partial record — for MVC a
  /// valid best-so-far cover with Outcome::kDeadline or kCancelled.
  const parallel::ParallelResult& wait(const JobTicket& ticket) const;

  /// Non-blocking: the result if terminal, nullptr otherwise.
  const parallel::ParallelResult* try_poll(const JobTicket& ticket) const;

  /// Stops admission, drains every shard, joins the workers. Idempotent;
  /// called by the destructor.
  void shutdown();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// The DeviceSpec slice worker `w` solves on.
  const device::DeviceSpec& worker_device(int w) const {
    return worker_devices_[static_cast<std::size_t>(w)];
  }

  int num_devices() const { return static_cast<int>(device_slices_.size()); }

  /// The device worker `w` is pinned to (its tier-1 steal domain).
  int device_of_worker(int w) const {
    return worker_device_[static_cast<std::size_t>(w)];
  }

  /// Device slice `d` of the machine (== `options.device` when
  /// num_devices == 1).
  const device::DeviceSpec& device_slice(int d) const {
    return device_slices_[static_cast<std::size_t>(d)];
  }

  /// The shard a key routes to under `num_shards` queues — exposed so
  /// tests and benches can construct shard-skewed loads deliberately.
  static int home_shard(const CacheKey& key, int num_shards) {
    return static_cast<int>(CacheKeyHash{}(key) %
                            static_cast<std::size_t>(num_shards));
  }

  /// Tier-2 broker (null unless steal_tiers == kJobsAndNodes with more
  /// than one device). Exposed for conservation checks in tests.
  const worklist::DeviceBroker* broker() const { return broker_.get(); }

  const std::shared_ptr<ResultCache>& cache() const { return cache_; }

  ServiceStats stats() const;

  /// Live per-worker phase profile (readable while workers run; relaxed
  /// monotone counters — the progress monitors poll this).
  const obs::PhaseTable& phases() const { return phase_table_; }

  /// SM-wise partition of `device` into `workers` slices (exposed for
  /// tests): each slice keeps the per-SM ratios and splits num_sms and
  /// global memory as evenly as integer division allows, every slice
  /// getting at least one SM.
  static std::vector<device::DeviceSpec> partition_device(
      const device::DeviceSpec& device, int workers);

 private:
  ServiceOptions options_;
  /// Per-worker phase profile; sized from the clamped worker count.
  obs::PhaseTable phase_table_;
  std::shared_ptr<ResultCache> cache_;
  std::vector<device::DeviceSpec> device_slices_;   ///< one per device
  std::vector<device::DeviceSpec> worker_devices_;  ///< one per worker
  std::vector<int> worker_device_;               ///< worker -> device
  std::vector<std::vector<int>> device_workers_; ///< device -> its workers
  std::unique_ptr<worklist::DeviceBroker> broker_;  ///< tier 2; may be null
  std::vector<std::unique_ptr<JobQueue>> queues_;
  std::vector<std::thread> workers_;

  std::atomic<JobId> next_job_id_{1};
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;  ///< serializes shutdown()/destructor joins

  // Lifecycle counters, held as this instance's registry collectors
  // (gvc_service_*): ServiceStats reads these handles, the registry scrape
  // sums them across services.
  std::shared_ptr<obs::Counter> submitted_;
  std::shared_ptr<obs::Counter> completed_;
  std::shared_ptr<obs::Counter> cache_hits_;
  std::shared_ptr<obs::Counter> coalesced_;
  std::shared_ptr<obs::Counter> rejected_;
  std::shared_ptr<obs::Counter> expired_;
  std::shared_ptr<obs::Counter> cancelled_;
  std::shared_ptr<obs::Counter> corpus_batches_;
  std::shared_ptr<obs::Counter> corpus_graphs_submitted_;
  std::shared_ptr<obs::Counter> corpus_graphs_solved_;
  std::shared_ptr<obs::Counter> corpus_graphs_skipped_;
  std::shared_ptr<obs::Counter> steal_jobs_;
  std::shared_ptr<obs::Counter> steal_nodes_;
  std::shared_ptr<obs::Histogram> queue_wait_hist_;
  std::shared_ptr<obs::Histogram> solve_hist_;
  std::shared_ptr<obs::Histogram> e2e_hist_;
  std::shared_ptr<obs::Histogram> migrate_run_hist_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> jobs_per_worker_;

  std::atomic<std::uint64_t> next_batch_shard_{0};

  int shard_of(const CacheKey& key) const;
  /// Queues one corpus chunk as a batch job (round-robin shard, no cache).
  JobTicket submit_batch_job(JobSpec spec);
  void worker_loop(int w);
  /// The steal-tiers job source: own shard, then tier-1 siblings, then a
  /// tier-2 migrated node, then a bounded hungry sleep; loops until a job
  /// arrives or the own shard is closed-and-drained (returns null). The
  /// whole wait is booked as kIdle except migrated-node runs (kSteal).
  std::shared_ptr<JobState> acquire_job_stealing(
      int w, parallel::SolveWorkspace& workspace);
  /// Stamp one terminal job's latencies into the histograms. `queued`: the
  /// job entered a shard queue (queue_s is meaningful); `solved`: a worker
  /// ran a solve for it. Workers call this BEFORE JobState::finish() wakes
  /// the waiters, so a stats() read that follows a wait() always includes
  /// the job's samples (the observed e2e is measured immediately before
  /// the terminal stamp; the difference is the hand-off, ~ns).
  void observe_latency(double e2e_s, double queue_s, double solve_s,
                       bool queued, bool solved);
};

}  // namespace gvc::service
