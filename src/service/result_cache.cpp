#include "service/result_cache.hpp"

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace gvc::service {

ResultCache::ResultCache(std::size_t capacity, double min_cache_seconds)
    : capacity_(capacity), min_cache_seconds_(min_cache_seconds) {
  GVC_CHECK_MSG(capacity_ > 0, "ResultCache capacity must be positive");
  GVC_CHECK_MSG(min_cache_seconds_ >= 0.0,
                "min_cache_seconds must be non-negative");

  // Expose the existing (mutex-guarded) stats through the registry; the
  // scrape sums every live cache in the process. Cumulative counts go out
  // as counters, the entry populations as gauges.
  obs::Registry& reg = obs::Registry::global();
  auto counter = [&](const char* name, const char* help,
                     std::uint64_t Stats::* field) {
    metric_handles_.push_back(reg.counter_fn(name, help, [this, field] {
      std::lock_guard<std::mutex> lock(mutex_);
      return static_cast<double>(stats_.*field);
    }));
  };
  counter("gvc_cache_hits_total", "completed-entry cache hits",
          &Stats::hits);
  counter("gvc_cache_misses_total", "cache probes that found nothing",
          &Stats::misses);
  counter("gvc_cache_coalesced_total", "submissions coalesced in flight",
          &Stats::inflight_hits);
  counter("gvc_cache_bypasses_total", "in-flight keys solved independently",
          &Stats::bypasses);
  counter("gvc_cache_inserts_total", "completed records stored",
          &Stats::inserts);
  counter("gvc_cache_refused_total", "records refused at admission",
          &Stats::refused);
  counter("gvc_cache_evictions_total", "completed entries LRU-evicted",
          &Stats::evictions);
  metric_handles_.push_back(
      reg.gauge("gvc_cache_completed_entries", "completed entries held",
                [this] {
                  std::lock_guard<std::mutex> lock(mutex_);
                  return static_cast<double>(lru_.size());
                }));
  metric_handles_.push_back(
      reg.gauge("gvc_cache_inflight_entries", "pinned in-flight keys",
                [this] {
                  std::lock_guard<std::mutex> lock(mutex_);
                  return static_cast<double>(map_.size() - lru_.size());
                }));
}

void ResultCache::touch(Node& node) {
  lru_.splice(lru_.begin(), lru_, node.lru_it);
}

void ResultCache::evict_down_to_capacity() {
  while (lru_.size() > capacity_) {
    const CacheKey& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Outcome ResultCache::acquire(
    const CacheKey& key, const std::shared_ptr<JobState>& fresh,
    parallel::ParallelResult* result_out,
    std::shared_ptr<JobState>* owner_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    Node& node = it->second;
    if (node.ready) {
      ++stats_.hits;
      touch(node);
      if (result_out) *result_out = node.result;
      obs::trace_instant(obs::TraceCat::kCache, "cache_hit");
      return Outcome::kHit;
    }
    if (node.inflight_owner != nullptr &&
        is_terminal(node.inflight_owner->status())) {
      // The owner died while queued (cancelled/expired) and has not been
      // swept yet: adopt the key so this submission re-solves.
      node.inflight_owner = fresh;
      ++stats_.misses;
      return Outcome::kMiss;
    }
    if (node.inflight_owner != nullptr && fresh != nullptr &&
        !same_solve_budget(fresh->spec(), node.inflight_owner->spec())) {
      // Same result identity, different budgets: the in-flight solve runs
      // under the owner's control, so its answer may be truncated in ways
      // this caller did not ask for. Run independently.
      ++stats_.bypasses;
      obs::trace_instant(obs::TraceCat::kCache, "cache_bypass");
      return Outcome::kBypass;
    }
    ++stats_.inflight_hits;
    if (owner_out) *owner_out = node.inflight_owner;
    obs::trace_instant(obs::TraceCat::kCache, "cache_coalesce");
    return Outcome::kInflight;
  }
  ++stats_.misses;
  obs::trace_instant(obs::TraceCat::kCache, "cache_miss");
  Node node;
  node.ready = false;
  node.inflight_owner = fresh;
  map_.emplace(key, std::move(node));
  return Outcome::kMiss;
}

void ResultCache::complete(const CacheKey& key,
                           const parallel::ParallelResult& result,
                           const JobState* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end() && it->second.ready) {
    // Refreshed store (two memoizers raced): keep the first result — the
    // coalescing contract promises one canonical record per key — but
    // refresh recency. Exception (staleness upgrade): a complete record
    // replaces an incomplete one a pre-policy writer left behind.
    if (!vc::is_complete(it->second.result.outcome) &&
        vc::is_complete(result.outcome))
      it->second.result = result;
    touch(it->second);
    return;
  }
  // Admission: limit/deadline/cancel outcomes are load-dependent, not
  // canonical, and sub-threshold solves are cheaper to redo than the
  // eviction they'd cause. Refusal == abandon for the refusing job's OWN
  // registration (so the next identical submission re-solves); a refusal
  // must not tear down a live registration belonging to a different job
  // (memoizers and bypass jobs never held one).
  if (!vc::is_complete(result.outcome) ||
      result.seconds < min_cache_seconds_) {
    ++stats_.refused;
    obs::trace_instant(obs::TraceCat::kCache, "cache_refuse");
    if (it != map_.end() &&
        (owner == nullptr ? it->second.inflight_owner == nullptr
                          : it->second.inflight_owner.get() == owner))
      map_.erase(it);
    return;
  }
  if (it == map_.end())
    it = map_.emplace(key, Node{}).first;
  Node& node = it->second;
  node.inflight_owner.reset();
  node.result = result;
  node.ready = true;
  lru_.push_front(key);
  node.lru_it = lru_.begin();
  ++stats_.inserts;
  obs::trace_instant(obs::TraceCat::kCache, "cache_store");
  evict_down_to_capacity();
}

void ResultCache::abandon(const CacheKey& key, const JobState* owner) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.ready) return;
  if (owner != nullptr && it->second.inflight_owner.get() != owner) return;
  map_.erase(it);
}

bool ResultCache::lookup(const CacheKey& key, parallel::ParallelResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.ready) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  touch(it->second);
  if (out) *out = it->second.result;
  return true;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.completed_entries = lru_.size();
  s.inflight_entries = map_.size() - lru_.size();
  return s;
}

}  // namespace gvc::service
