#include "service/result_cache.hpp"

#include "util/check.hpp"

namespace gvc::service {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  GVC_CHECK_MSG(capacity_ > 0, "ResultCache capacity must be positive");
}

void ResultCache::touch(Node& node) {
  lru_.splice(lru_.begin(), lru_, node.lru_it);
}

void ResultCache::evict_down_to_capacity() {
  while (lru_.size() > capacity_) {
    const CacheKey& victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Outcome ResultCache::acquire(
    const CacheKey& key, const std::shared_ptr<JobState>& fresh,
    parallel::ParallelResult* result_out,
    std::shared_ptr<JobState>* owner_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    Node& node = it->second;
    if (node.ready) {
      ++stats_.hits;
      touch(node);
      if (result_out) *result_out = node.result;
      return Outcome::kHit;
    }
    ++stats_.inflight_hits;
    if (owner_out) *owner_out = node.inflight_owner;
    return Outcome::kInflight;
  }
  ++stats_.misses;
  Node node;
  node.ready = false;
  node.inflight_owner = fresh;
  map_.emplace(key, std::move(node));
  return Outcome::kMiss;
}

void ResultCache::complete(const CacheKey& key,
                           const parallel::ParallelResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end() && it->second.ready) {
    // Refreshed store (two memoizers raced): keep the first result — the
    // coalescing contract promises one canonical record per key — but
    // refresh recency. Exception: a completed record replaces a stale
    // limit-hit one (limit hits are load-dependent, not canonical).
    if (it->second.result.timed_out && !result.timed_out)
      it->second.result = result;
    touch(it->second);
    return;
  }
  if (it == map_.end())
    it = map_.emplace(key, Node{}).first;
  Node& node = it->second;
  node.inflight_owner.reset();
  node.result = result;
  node.ready = true;
  lru_.push_front(key);
  node.lru_it = lru_.begin();
  ++stats_.inserts;
  evict_down_to_capacity();
}

void ResultCache::abandon(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end() && !it->second.ready) map_.erase(it);
}

bool ResultCache::lookup(const CacheKey& key, parallel::ParallelResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.ready) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  touch(it->second);
  if (out) *out = it->second.result;
  return true;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.completed_entries = lru_.size();
  s.inflight_entries = map_.size() - lru_.size();
  return s;
}

}  // namespace gvc::service
