#pragma once

// Bounded admission queue for one SolveService worker shard.
//
// Ordering: highest priority first; within a priority, earliest absolute
// deadline first (no deadline sorts last); within that, FIFO by submission
// sequence, so equal-priority traffic is served fairly.
//
// Admission: a job whose deadline has already passed is refused outright
// (kRejectedExpired) — queueing it would only waste a worker dequeue.
//
// Backpressure: the queue holds at most `capacity` jobs. A push against a
// full queue either blocks the submitting thread until a worker drains an
// entry (FullPolicy::kBlock — the service's default, load sheds onto the
// callers) or fails immediately (FullPolicy::kReject — for callers that
// prefer an error to latency). A blocked push re-runs the FULL admission
// sequence (closed → deadline → capacity) on every wake, and its wait is
// bounded by the job's own deadline: the shard's worker may have gone
// stealing from a sibling queue, in which case nobody pops this queue for
// an arbitrarily long time and a deadline-carrying producer must expire on
// its own rather than sleep past its deadline.
//
// Shutdown: close() stops admission; pop() keeps draining what was admitted
// and returns nullptr once the queue is empty and closed.

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "obs/metrics.hpp"
#include "service/job.hpp"

namespace gvc::service {

class JobQueue {
 public:
  enum class FullPolicy { kBlock, kReject };

  enum class PushOutcome {
    kAccepted,
    kRejectedFull,     ///< kReject policy and the queue was full
    kRejectedExpired,  ///< deadline already passed at admission
    kRejectedClosed,   ///< close() was called
  };

  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_expired = 0;
    std::uint64_t rejected_closed = 0;
    std::uint64_t blocked_pushes = 0;  ///< pushes that had to wait (kBlock)
    std::size_t max_size_seen = 0;
  };

  JobQueue(std::size_t capacity, FullPolicy policy);

  /// `deadline_abs` is the job's absolute expiry on the queue's monotonic
  /// clock (now_s() domain); <= 0 means no deadline.
  PushOutcome push(std::shared_ptr<JobState> job, double deadline_abs);

  /// Blocks until a job is available; nullptr once closed and drained.
  std::shared_ptr<JobState> pop();

  /// Non-blocking: the next job if one is queued, nullptr otherwise. This
  /// is the steal path — a sibling worker draining this shard — so it
  /// signals not_full_ exactly like pop(): a steal must free a producer
  /// blocked on this queue even though the shard's own worker never popped.
  std::shared_ptr<JobState> try_pop();

  /// Like pop(), but gives up after `seconds`. nullptr on timeout OR on
  /// closed-and-drained; `*closed_out` (optional) distinguishes the two.
  /// Stealing workers use this as their bounded sleep quantum so they come
  /// back to the steal scan instead of parking on their own shard forever.
  std::shared_ptr<JobState> pop_for(double seconds, bool* closed_out = nullptr);

  /// Stops admission and wakes all blocked pushers/poppers.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  FullPolicy policy() const { return policy_; }
  Stats stats() const;

  /// Seconds on the queue's monotonic clock; submitters use it to derive
  /// deadline_abs = now_s() + deadline_s.
  static double now_s();

 private:
  struct Entry {
    std::shared_ptr<JobState> job;
    int priority = 0;
    double deadline_abs = 0.0;  ///< <= 0: none
    std::uint64_t seq = 0;

    /// True if this entry should run before `o`.
    bool before(const Entry& o) const;
  };

  const std::size_t capacity_;
  const FullPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Entry> heap_;  // std binary heap; front = next to run
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  Stats stats_;

  /// std heap comparator: "less" = runs later, so the front runs next.
  static bool runs_later(const Entry& a, const Entry& b);
  void heap_push(Entry e);
  Entry heap_pop();

  // Registry exposure of the stats above (gvc_queue_*); a sharded service
  // registers one JobQueue per shard and the scrape sums the family.
  // Callbacks capture `this` and take mutex_ — declared LAST so they
  // unregister before any other member dies.
  std::vector<obs::Registry::CallbackHandle> metric_handles_;
};

}  // namespace gvc::service
