#pragma once

// Canonical-hash result cache with LRU eviction and in-flight deduplication.
//
// Two client styles share one instance:
//
//  * The SolveService submit path calls acquire(): in one critical section
//    it either serves a completed entry (kHit), attaches the caller to an
//    identical job that is already queued/running (kInflight — the
//    submissions coalesce and every ticket completes when that one solve
//    does), or registers the caller's fresh job as the in-flight owner of
//    the key (kMiss — the caller must later complete() or abandon() it).
//
//  * Synchronous memoizers (harness::Runner::min_cover) use lookup()/
//    insert() like a plain map, and thereby warm the same entries the
//    service serves.
//
// Eviction is LRU over *completed* entries only; in-flight registrations
// are pinned (evicting one would break the coalescing contract) and do not
// count toward capacity.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "parallel/config.hpp"
#include "service/graph_hash.hpp"
#include "service/job.hpp"

namespace gvc::service {

class ResultCache {
 public:
  enum class Outcome { kHit, kInflight, kMiss };

  struct Stats {
    std::uint64_t hits = 0;           ///< served from a completed entry
    std::uint64_t misses = 0;         ///< acquire/lookup found nothing
    std::uint64_t inflight_hits = 0;  ///< coalesced onto a running job
    std::uint64_t inserts = 0;        ///< completed entries stored
    std::uint64_t evictions = 0;      ///< completed entries LRU-evicted
    std::size_t completed_entries = 0;
    std::size_t inflight_entries = 0;

    double hit_ratio() const {
      const std::uint64_t probes = hits + inflight_hits + misses;
      return probes == 0
                 ? 0.0
                 : static_cast<double>(hits + inflight_hits) /
                       static_cast<double>(probes);
    }
  };

  explicit ResultCache(std::size_t capacity);

  /// Service path; see the header comment. On kHit `*result_out` is filled;
  /// on kInflight `*owner_out` is the job every coalesced ticket shares; on
  /// kMiss `fresh` is registered as the key's in-flight owner.
  Outcome acquire(const CacheKey& key, const std::shared_ptr<JobState>& fresh,
                  parallel::ParallelResult* result_out,
                  std::shared_ptr<JobState>* owner_out);

  /// Completes an in-flight registration (or directly stores/refreshes a
  /// completed entry — insert() is this without a prior acquire()).
  void complete(const CacheKey& key, const parallel::ParallelResult& result);

  /// Drops an in-flight registration without a result (the owner job was
  /// rejected or expired). No-op if the key is not in-flight.
  void abandon(const CacheKey& key);

  /// Memo path: completed entries only. lookup() refreshes LRU recency.
  bool lookup(const CacheKey& key, parallel::ParallelResult* out);
  void insert(const CacheKey& key, const parallel::ParallelResult& result) {
    complete(key, result);
  }

  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Node {
    bool ready = false;
    parallel::ParallelResult result;          // valid when ready
    std::shared_ptr<JobState> inflight_owner;  // valid when !ready
    std::list<CacheKey>::iterator lru_it;      // valid when ready
  };

  using Map = std::unordered_map<CacheKey, Node, CacheKeyHash>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  Map map_;
  std::list<CacheKey> lru_;  // front = most recently used completed key
  Stats stats_;

  void touch(Node& node);                    // move to LRU front
  void evict_down_to_capacity();
};

}  // namespace gvc::service
