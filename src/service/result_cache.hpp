#pragma once

// Canonical-hash result cache with LRU eviction and in-flight deduplication.
//
// Two client styles share one instance:
//
//  * The SolveService submit path calls acquire(): in one critical section
//    it either serves a completed entry (kHit), attaches the caller to an
//    identical job that is already queued/running (kInflight — the
//    submissions coalesce and every ticket completes when that one solve
//    does), or registers the caller's fresh job as the in-flight owner of
//    the key (kMiss — the caller must later complete() or abandon() it).
//
//  * Synchronous memoizers (harness::Runner::min_cover) use lookup()/
//    insert() like a plain map, and thereby warm the same entries the
//    service serves.
//
// Eviction is LRU over *completed* entries only; in-flight registrations
// are pinned (evicting one would break the coalescing contract) and do not
// count toward capacity.
//
// Admission policy (complete()/insert()):
//
//  * Only complete outcomes (vc::is_complete — kOptimal/kInfeasible) are
//    stored. Limit hits, kDeadline and kCancelled records are refused with
//    one shared staleness rule: they are load-dependent, not canonical, so
//    serving them to future identical submissions would pin a transient
//    failure. A refusal also releases the key's in-flight registration, so
//    the next identical submission re-solves.
//
//  * Cost-aware admission: solves cheaper than `min_cache_seconds` are
//    refused the same way, so floods of tiny instances cannot evict
//    expensive records (default 0 = store everything).
//
//  * A stored entry is immutable except for the staleness upgrade: a
//    complete record replaces an incomplete one left by a pre-policy
//    writer; it is never downgraded.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/config.hpp"
#include "service/graph_hash.hpp"
#include "service/job.hpp"

namespace gvc::service {

class ResultCache {
 public:
  /// kBypass: an identical-key job is in flight but was submitted with
  /// different budgets (limits/deadline), so the caller must run its own
  /// solve instead of coalescing — without registering (the key already
  /// has an owner). Its completion may still store the record.
  enum class Outcome { kHit, kInflight, kMiss, kBypass };

  struct Stats {
    std::uint64_t hits = 0;           ///< served from a completed entry
    std::uint64_t misses = 0;         ///< acquire/lookup found nothing
    std::uint64_t inflight_hits = 0;  ///< coalesced onto a running job
    std::uint64_t bypasses = 0;       ///< in-flight key, incompatible
                                      ///< budgets: solved independently
    std::uint64_t inserts = 0;        ///< completed entries stored
    std::uint64_t refused = 0;        ///< records refused at admission
                                      ///< (incomplete outcome or cheaper
                                      ///< than min_cache_seconds)
    std::uint64_t evictions = 0;      ///< completed entries LRU-evicted
    std::size_t completed_entries = 0;
    std::size_t inflight_entries = 0;

    double hit_ratio() const {
      const std::uint64_t probes = hits + inflight_hits + misses;
      return probes == 0
                 ? 0.0
                 : static_cast<double>(hits + inflight_hits) /
                       static_cast<double>(probes);
    }
  };

  /// `min_cache_seconds`: cost-aware admission floor (see header comment);
  /// 0 stores every complete record.
  explicit ResultCache(std::size_t capacity, double min_cache_seconds = 0.0);

  /// Service path; see the header comment. On kHit `*result_out` is filled;
  /// on kInflight `*owner_out` is the job every coalesced ticket shares; on
  /// kMiss `fresh` is registered as the key's in-flight owner.
  ///
  /// Dead-owner adoption: if the registered owner is already terminal (it
  /// was cancelled or expired while queued and no worker has swept the
  /// registration yet), the key is handed to `fresh` and the call reports
  /// kMiss — coalescing onto a job that will never produce a result would
  /// condemn the new submission to the old one's fate.
  Outcome acquire(const CacheKey& key, const std::shared_ptr<JobState>& fresh,
                  parallel::ParallelResult* result_out,
                  std::shared_ptr<JobState>* owner_out);

  /// Completes an in-flight registration (or directly stores/refreshes a
  /// completed entry — insert() is this without a prior acquire()). The
  /// admission policy applies: a refused record (incomplete outcome, or
  /// cheaper than min_cache_seconds) drops the caller's in-flight
  /// registration instead of storing, exactly like abandon() — and like
  /// abandon(), the drop is owner-guarded: a refusal only erases the
  /// registration when `owner` matches it (or when no registration
  /// exists). Memoizers (owner == nullptr) never tear down a service
  /// job's live registration.
  void complete(const CacheKey& key, const parallel::ParallelResult& result,
                const JobState* owner = nullptr);

  /// Drops an in-flight registration without a result (the owner job was
  /// rejected, expired, or cancelled). No-op if the key is not in-flight,
  /// or — when `owner` is given — if the registration has since been
  /// adopted by a different job (see acquire): a worker sweeping a dead
  /// job must not tear down the adopter's live registration.
  void abandon(const CacheKey& key, const JobState* owner = nullptr);

  /// Memo path: completed entries only. lookup() refreshes LRU recency.
  bool lookup(const CacheKey& key, parallel::ParallelResult* out);
  void insert(const CacheKey& key, const parallel::ParallelResult& result) {
    complete(key, result);
  }

  std::size_t capacity() const { return capacity_; }
  double min_cache_seconds() const { return min_cache_seconds_; }
  Stats stats() const;

 private:
  struct Node {
    bool ready = false;
    parallel::ParallelResult result;          // valid when ready
    std::shared_ptr<JobState> inflight_owner;  // valid when !ready
    std::list<CacheKey>::iterator lru_it;      // valid when ready
  };

  using Map = std::unordered_map<CacheKey, Node, CacheKeyHash>;

  const std::size_t capacity_;
  const double min_cache_seconds_;
  mutable std::mutex mutex_;
  Map map_;
  std::list<CacheKey> lru_;  // front = most recently used completed key
  Stats stats_;

  void touch(Node& node);                    // move to LRU front
  void evict_down_to_capacity();

  // Registry exposure of the stats above (gvc_cache_*). Callbacks capture
  // `this` and take mutex_, so the handles are declared LAST: they
  // unregister (and thereby quiesce scrapes) before any other member dies.
  std::vector<obs::Registry::CallbackHandle> metric_handles_;
};

}  // namespace gvc::service
