#pragma once

// Compressed Sparse Row representation of a finite, simple, undirected graph
// (§IV-B of the paper). A single immutable CSR instance is shared by every
// thread block; all intermediate graphs are expressed as degree arrays
// layered on top of it (see vc/degree_array.hpp).

#include <cstdint>
#include <span>
#include <vector>

namespace gvc::graph {

/// Vertex identifier. Graphs in this project are bounded by host memory,
/// well within 32-bit range.
using Vertex = std::int32_t;

/// Immutable undirected graph in CSR form.
///
/// Invariants (checked by validate()):
///  * offsets has size n+1, offsets[0] == 0, non-decreasing;
///  * adjacency of every vertex is sorted ascending and duplicate-free;
///  * no self-loops;
///  * symmetric: u ∈ adj(v) ⇔ v ∈ adj(u).
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of raw CSR arrays. Call validate() afterwards if the
  /// arrays come from an untrusted source; the builder already guarantees
  /// the invariants.
  CsrGraph(std::vector<std::int64_t> offsets, std::vector<Vertex> adjacency);

  /// Number of vertices.
  Vertex num_vertices() const { return static_cast<Vertex>(offsets_.size()) - 1; }

  /// Number of undirected edges (half the stored directed arcs).
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adjacency_.size()) / 2; }

  /// Degree of v in the original graph.
  Vertex degree(Vertex v) const {
    return static_cast<Vertex>(offsets_[static_cast<std::size_t>(v) + 1] -
                               offsets_[static_cast<std::size_t>(v)]);
  }

  /// Sorted neighbors of v.
  std::span<const Vertex> neighbors(Vertex v) const {
    auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {adjacency_.data() + b, e - b};
  }

  /// O(log deg) adjacency test.
  bool has_edge(Vertex u, Vertex v) const;

  /// Maximum degree Δ(G); 0 for an empty graph.
  Vertex max_degree() const;

  /// Average degree 2|E|/|V|; 0 for an empty graph.
  double average_degree() const;

  /// Verifies all class invariants; aborts with a message on violation.
  /// Intended for tests and for graphs loaded from disk.
  void validate() const;

  /// Structural equality (same vertex count and adjacency).
  bool operator==(const CsrGraph& other) const = default;

  const std::vector<std::int64_t>& offsets() const { return offsets_; }
  const std::vector<Vertex>& adjacency() const { return adjacency_; }

 private:
  std::vector<std::int64_t> offsets_ = {0};
  std::vector<Vertex> adjacency_;
};

}  // namespace gvc::graph
