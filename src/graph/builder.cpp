#include "graph/builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gvc::graph {

GraphBuilder::GraphBuilder(Vertex n) : n_(n) { GVC_CHECK(n >= 0); }

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  GVC_CHECK_MSG(u >= 0 && u < n_ && v >= 0 && v < n_, "edge endpoint out of range");
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

bool GraphBuilder::contains(Vertex u, Vertex v) const {
  if (u > v) std::swap(u, v);
  return std::find(edges_.begin(), edges_.end(), std::make_pair(u, v)) !=
         edges_.end();
}

std::vector<std::pair<Vertex, Vertex>> GraphBuilder::normalized_edges() const {
  auto es = edges_;
  std::sort(es.begin(), es.end());
  es.erase(std::unique(es.begin(), es.end()), es.end());
  return es;
}

CsrGraph GraphBuilder::build() const {
  auto es = normalized_edges();

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [u, v] : es) {
    ++offsets[static_cast<std::size_t>(u) + 1];
    ++offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Vertex> adj(static_cast<std::size_t>(offsets.back()));
  std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (auto [u, v] : es) {
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
    adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
  }
  // Edges were emitted in (u,v)-sorted order, so each vertex's neighbor list
  // from 'u' slots is sorted, but the mix of u-slots and v-slots is not;
  // sort each range.
  for (Vertex v = 0; v < n_; ++v) {
    auto b = adj.begin() + offsets[static_cast<std::size_t>(v)];
    auto e = adj.begin() + offsets[static_cast<std::size_t>(v) + 1];
    std::sort(b, e);
  }
  return CsrGraph(std::move(offsets), std::move(adj));
}

CsrGraph from_edges(Vertex n,
                    const std::vector<std::pair<Vertex, Vertex>>& edges) {
  GraphBuilder b(n);
  for (auto [u, v] : edges) b.add_edge(u, v);
  return b.build();
}

}  // namespace gvc::graph
