#pragma once

// Edge-list accumulation and CSR construction. All generators and parsers
// funnel through GraphBuilder, which normalizes input (drops self-loops,
// deduplicates, symmetrizes) so every CsrGraph in the system satisfies the
// simple-undirected invariants by construction.

#include <utility>
#include <vector>

#include "graph/csr.hpp"

namespace gvc::graph {

class GraphBuilder {
 public:
  /// n: number of vertices (fixed up front; edges to out-of-range vertices
  /// are a programming error).
  explicit GraphBuilder(Vertex n);

  Vertex num_vertices() const { return n_; }

  /// Records an undirected edge {u, v}. Self-loops are silently dropped;
  /// duplicates are deduplicated at build time. Order of u, v is irrelevant.
  void add_edge(Vertex u, Vertex v);

  /// Number of edge records accumulated so far (pre-dedup).
  std::size_t num_recorded() const { return edges_.size(); }

  /// Whether {u,v} has been recorded (linear scan; for tests/generators).
  bool contains(Vertex u, Vertex v) const;

  /// Builds the CSR graph. The builder may be reused afterwards (its edge
  /// list is preserved).
  CsrGraph build() const;

  /// The normalized edge set (u < v, sorted, deduplicated).
  std::vector<std::pair<Vertex, Vertex>> normalized_edges() const;

 private:
  Vertex n_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
};

/// Convenience: CSR from an explicit edge list.
CsrGraph from_edges(Vertex n,
                    const std::vector<std::pair<Vertex, Vertex>>& edges);

}  // namespace gvc::graph
