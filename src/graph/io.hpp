#pragma once

// Graph file IO. Readers accept the formats the paper's instance collections
// ship in: DIMACS .col/.clq ("p edge"), METIS, MatrixMarket pattern files,
// and SNAP/KONECT whitespace edge lists. Writers exist for DIMACS and edge
// lists so generated stand-ins can be exported and inspected.
//
// Error contract. Every reader exists in two forms:
//
//   * try_read_*() — the recoverable contract: returns an IoResult carrying
//     either the graph or an IoError naming what was malformed and where.
//     Never aborts on input bytes, whatever they contain. This is the form
//     the corpus readers (graph/corpus.hpp) and every caller that must
//     survive one bad graph in a stream of thousands build on.
//   * read_*() — the legacy fail-fast form: a thin wrapper that aborts
//     (GVC_CHECK) with the IoError's message on malformed input. Single-
//     graph tools keep this behavior deliberately — a CLI solve on a broken
//     file should die loudly, not limp on.
//
// Non-fatal findings (e.g. a DIMACS edge count that disagrees with the
// p-line header) are attached to a *successful* IoResult as a warning; the
// fail-fast wrappers log them at WARN.

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "graph/csr.hpp"

namespace gvc::graph {

/// Largest vertex count a reader accepts from a header line. Header-declared
/// counts size the CSR allocation before a single body byte is validated, so
/// one line of an untrusted stream can demand gigabytes (or overflow the
/// 32-bit Vertex cast into an abort); counts above the cap are rejected as
/// malformed ("vertex count out of range"). Defaults to Vertex's full
/// positive range; ingest layers facing untrusted bytes may lower it.
/// Shared by the corpus readers (graph/corpus.hpp).
Vertex max_header_vertices();

/// Sets the cap (clamped to >= 0) and returns the previous value. Global
/// and atomic — intended for process setup, not per-read toggling.
Vertex set_max_header_vertices(Vertex cap);

/// Where and why a read failed. `line` is 1-based; 0 only when the stream
/// held no lines at all. `at_end` marks diagnostics raised at end of input
/// (missing header, truncated body) — the position then names the last line
/// actually read, not a phantom record.
struct IoError {
  std::string what;
  long long line = 0;
  bool at_end = false;

  /// "malformed graph file: <what> (line N)" — or, for at_end errors,
  /// "(end of input after line N)" / "(empty input)" so a truncation is
  /// never reported as if line N itself were bad.
  std::string to_string() const;
};

/// Result of a recoverable read: a value or an IoError, plus an optional
/// non-fatal warning attached to successful reads ("" = none).
template <typename T>
class IoResult {
 public:
  IoResult(T value) : value_(std::move(value)), ok_(true) {}  // NOLINT
  IoResult(IoError error) : error_(std::move(error)) {}       // NOLINT

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  /// Valid only when ok().
  T& value() { return value_; }
  const T& value() const { return value_; }

  /// Valid only when !ok().
  const IoError& error() const { return error_; }

  /// Non-fatal diagnostic attached to a successful read ("" = none).
  std::string warning;

 private:
  T value_{};
  IoError error_;
  bool ok_ = false;
};

/// DIMACS: "c" comments, "p edge|col <n> <m>" header, "e <u> <v>" edges
/// (1-based). The edge count of the p line is validated against the body
/// (after dedup/self-loop normalization): a disagreement is a warning by
/// default — common in the wild — or an error under `strict_edge_count`
/// (the corpus readers' mode, where a short body usually means a truncated
/// record).
IoResult<CsrGraph> try_read_dimacs(std::istream& in,
                                   bool strict_edge_count = false);
CsrGraph read_dimacs(std::istream& in);
void write_dimacs(std::ostream& out, const CsrGraph& g,
                  const std::string& comment = "");

/// METIS: header "<n> <m> [fmt]", then line i holds the 1-based neighbors of
/// vertex i. Only the unweighted format (fmt absent or 0) is supported.
IoResult<CsrGraph> try_read_metis(std::istream& in);
CsrGraph read_metis(std::istream& in);
void write_metis(std::ostream& out, const CsrGraph& g);

/// MatrixMarket coordinate pattern, symmetric or general. General matrices
/// are symmetrized; diagonal entries are dropped.
IoResult<CsrGraph> try_read_matrix_market(std::istream& in);
CsrGraph read_matrix_market(std::istream& in);

/// SNAP/KONECT edge list: "#"/"%" comments, one "u v" pair per line.
/// Vertex ids are compacted to 0..n-1 preserving numeric order.
IoResult<CsrGraph> try_read_edge_list(std::istream& in);
CsrGraph read_edge_list(std::istream& in);
void write_edge_list(std::ostream& out, const CsrGraph& g);

/// PACE challenge .gr (the format of the paper's vc-exact_009/023 rows):
/// "c" comments, "p td <n> <m>" header (the 2019 VC track reused the
/// treedepth descriptor; "p vc"/"p edge" are accepted too), then one
/// 1-based "u v" pair per line before which the header must appear.
IoResult<CsrGraph> try_read_pace(std::istream& in);
CsrGraph read_pace(std::istream& in);
void write_pace(std::ostream& out, const CsrGraph& g,
                const std::string& comment = "");

/// PACE solution exchange format (.vc/.sol): "c" comments, "s vc <n> <k>"
/// header, then k lines each holding one 1-based cover vertex.
void write_pace_solution(std::ostream& out, Vertex num_vertices,
                         const std::vector<Vertex>& cover);
/// Returns the cover as 0-based vertex ids (ascending).
IoResult<std::vector<Vertex>> try_read_pace_solution(std::istream& in);
std::vector<Vertex> read_pace_solution(std::istream& in);

/// Loads from a path, dispatching on extension:
///   .col/.clq/.dimacs → DIMACS, .graph/.metis → METIS,
///   .mtx → MatrixMarket, .gr → PACE, anything else → edge list.
/// try_load_graph reports unopenable files and malformed content as
/// IoErrors; load_graph aborts on both (fail-fast tool contract).
IoResult<CsrGraph> try_load_graph(const std::string& path);
CsrGraph load_graph(const std::string& path);

/// Saves as DIMACS if path ends in .col/.clq/.dimacs, PACE if .gr, else
/// edge list.
void save_graph(const std::string& path, const CsrGraph& g);

}  // namespace gvc::graph
