#pragma once

// Graph file IO. Readers accept the formats the paper's instance collections
// ship in: DIMACS .col/.clq ("p edge"), METIS, MatrixMarket pattern files,
// and SNAP/KONECT whitespace edge lists. Writers exist for DIMACS and edge
// lists so generated stand-ins can be exported and inspected.

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gvc::graph {

/// DIMACS: "c" comments, "p edge|col <n> <m>" header, "e <u> <v>" edges
/// (1-based). Tolerates edge counts that disagree with the header (common in
/// the wild) but requires a header before the first edge.
CsrGraph read_dimacs(std::istream& in);
void write_dimacs(std::ostream& out, const CsrGraph& g,
                  const std::string& comment = "");

/// METIS: header "<n> <m> [fmt]", then line i holds the 1-based neighbors of
/// vertex i. Only the unweighted format (fmt absent or 0) is supported.
CsrGraph read_metis(std::istream& in);
void write_metis(std::ostream& out, const CsrGraph& g);

/// MatrixMarket coordinate pattern, symmetric or general. General matrices
/// are symmetrized; diagonal entries are dropped.
CsrGraph read_matrix_market(std::istream& in);

/// SNAP/KONECT edge list: "#"/"%" comments, one "u v" pair per line.
/// Vertex ids are compacted to 0..n-1 preserving numeric order.
CsrGraph read_edge_list(std::istream& in);
void write_edge_list(std::ostream& out, const CsrGraph& g);

/// PACE challenge .gr (the format of the paper's vc-exact_009/023 rows):
/// "c" comments, "p td <n> <m>" header (the 2019 VC track reused the
/// treedepth descriptor; "p vc"/"p edge" are accepted too), then one
/// 1-based "u v" pair per line before which the header must appear.
CsrGraph read_pace(std::istream& in);
void write_pace(std::ostream& out, const CsrGraph& g,
                const std::string& comment = "");

/// PACE solution exchange format (.vc/.sol): "c" comments, "s vc <n> <k>"
/// header, then k lines each holding one 1-based cover vertex.
void write_pace_solution(std::ostream& out, Vertex num_vertices,
                         const std::vector<Vertex>& cover);
/// Returns the cover as 0-based vertex ids (ascending).
std::vector<Vertex> read_pace_solution(std::istream& in);

/// Loads from a path, dispatching on extension:
///   .col/.clq/.dimacs → DIMACS, .graph/.metis → METIS,
///   .mtx → MatrixMarket, .gr → PACE, anything else → edge list.
CsrGraph load_graph(const std::string& path);

/// Saves as DIMACS if path ends in .col/.clq/.dimacs, PACE if .gr, else
/// edge list.
void save_graph(const std::string& path, const CsrGraph& g);

}  // namespace gvc::graph
