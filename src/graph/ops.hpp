#pragma once

// Whole-graph operations: complement (the paper evaluates on complements of
// DIMACS clique instances, §V-B), induced subgraphs, connected components,
// and structural measures used by the instance catalog.

#include <vector>

#include "graph/csr.hpp"

namespace gvc::graph {

/// Complement graph: edge {u,v} (u≠v) present iff absent in g.
/// O(|V|²) — intended for the dense DIMACS-style instances.
CsrGraph complement(const CsrGraph& g);

/// Subgraph induced by `keep` (need not be sorted; duplicates are an error).
/// Vertices are relabeled 0..keep.size()-1 in the order given.
CsrGraph induced_subgraph(const CsrGraph& g, const std::vector<Vertex>& keep);

/// Component id per vertex (ids are 0-based, assigned in discovery order),
/// plus the number of components via the return value's max+1.
std::vector<int> connected_components(const CsrGraph& g);

int num_connected_components(const CsrGraph& g);

/// Degeneracy (max over the degeneracy ordering of the min remaining degree)
/// — a standard sparsity measure; used to sanity-check generated stand-ins.
int degeneracy(const CsrGraph& g);

/// Number of triangles in g (sum over edges of common neighbors / 3).
std::int64_t triangle_count(const CsrGraph& g);

/// True if `vertices` is a vertex cover of g.
bool is_vertex_cover(const CsrGraph& g, const std::vector<Vertex>& vertices);

/// True if `vertices` is an independent set of g.
bool is_independent_set(const CsrGraph& g, const std::vector<Vertex>& vertices);

/// Relabels vertices with a random permutation (seeded); used by property
/// tests to check solver invariance under isomorphism.
CsrGraph shuffle_labels(const CsrGraph& g, std::uint64_t seed,
                        std::vector<Vertex>* permutation_out = nullptr);

}  // namespace gvc::graph
