#include "graph/csr.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gvc::graph {

CsrGraph::CsrGraph(std::vector<std::int64_t> offsets,
                   std::vector<Vertex> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  GVC_CHECK_MSG(!offsets_.empty(), "CSR offsets must have at least one entry");
  GVC_CHECK(offsets_.front() == 0);
  GVC_CHECK(offsets_.back() == static_cast<std::int64_t>(adjacency_.size()));
}

bool CsrGraph::has_edge(Vertex u, Vertex v) const {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Vertex CsrGraph::max_degree() const {
  Vertex best = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

double CsrGraph::average_degree() const {
  if (num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_vertices());
}

void CsrGraph::validate() const {
  const Vertex n = num_vertices();
  GVC_CHECK(offsets_.front() == 0);
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
    GVC_CHECK_MSG(offsets_[i] <= offsets_[i + 1], "offsets not monotone");
  GVC_CHECK(offsets_.back() == static_cast<std::int64_t>(adjacency_.size()));

  for (Vertex v = 0; v < n; ++v) {
    auto nbrs = neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      Vertex u = nbrs[i];
      GVC_CHECK_MSG(u >= 0 && u < n, "neighbor out of range");
      GVC_CHECK_MSG(u != v, "self-loop");
      if (i > 0) GVC_CHECK_MSG(nbrs[i - 1] < u, "adjacency unsorted/duplicate");
      GVC_CHECK_MSG(has_edge(u, v), "asymmetric edge");
    }
  }
}

}  // namespace gvc::graph
