#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gvc::graph {

using util::Pcg32;

CsrGraph gnp(Vertex n, double p, std::uint64_t seed) {
  GVC_CHECK(n >= 0);
  GVC_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p > 0.0 && n > 1) {
    Pcg32 rng(seed);
    // Iterate over the implicit index of pairs (u,v), u<v, skipping
    // geometrically between present edges.
    const std::uint64_t total =
        static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
    std::uint64_t idx = rng.geometric_skip(p);
    while (idx < total) {
      // Invert the pair index: find u such that idx lies in u's row.
      // Row u (0-based) holds n-1-u entries, so row u starts at
      // row_start(u) = u*(n-1) - u*(u-1)/2. Invert via the quadratic
      // formula, then nudge against floating-point off-by-ones.
      auto row_start = [&](Vertex r) {
        auto rr = static_cast<std::uint64_t>(r);
        return rr * static_cast<std::uint64_t>(n - 1) - rr * (rr - 1) / 2;
      };
      double nn = static_cast<double>(n);
      double disc = (2.0 * nn - 1.0) * (2.0 * nn - 1.0) -
                    8.0 * static_cast<double>(idx);
      auto u = static_cast<Vertex>(std::floor(
          ((2.0 * nn - 1.0) - std::sqrt(std::max(disc, 0.0))) / 2.0));
      u = std::clamp<Vertex>(u, 0, n - 2);
      while (u > 0 && row_start(u) > idx) --u;
      while (u < n - 2 && row_start(u + 1) <= idx) ++u;
      std::uint64_t rem = idx - row_start(u);
      Vertex v = static_cast<Vertex>(static_cast<std::uint64_t>(u) + 1 + rem);
      b.add_edge(u, v);
      idx += 1 + rng.geometric_skip(p);
    }
  }
  return b.build();
}

CsrGraph p_hat(Vertex n, double p_low, double p_high, std::uint64_t seed) {
  GVC_CHECK(n >= 0);
  GVC_CHECK(0.0 <= p_low && p_low <= p_high && p_high <= 1.0);
  Pcg32 rng(seed);
  std::vector<double> propensity(static_cast<std::size_t>(n));
  for (auto& a : propensity) a = p_low + (p_high - p_low) * rng.real();
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      double p = 0.5 * (propensity[static_cast<std::size_t>(u)] +
                        propensity[static_cast<std::size_t>(v)]);
      if (rng.chance(p)) b.add_edge(u, v);
    }
  }
  return b.build();
}

CsrGraph barabasi_albert(Vertex n, int m, std::uint64_t seed) {
  GVC_CHECK(n >= 0);
  GVC_CHECK(m >= 1);
  GraphBuilder b(n);
  if (n <= 1) return b.build();
  Pcg32 rng(seed);
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // endpoint of every edge appears once in `targets`.
  std::vector<Vertex> targets;
  Vertex seed_size = static_cast<Vertex>(std::min<Vertex>(n, m + 1));
  // Seed clique keeps early degrees nonzero.
  for (Vertex u = 0; u < seed_size; ++u)
    for (Vertex v = u + 1; v < seed_size; ++v) {
      b.add_edge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  for (Vertex v = seed_size; v < n; ++v) {
    std::set<Vertex> chosen;
    while (static_cast<int>(chosen.size()) < m) {
      Vertex t = targets[rng.below(static_cast<std::uint32_t>(targets.size()))];
      if (t != v) chosen.insert(t);
    }
    for (Vertex t : chosen) {
      b.add_edge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return b.build();
}

CsrGraph watts_strogatz(Vertex n, int k, double beta, std::uint64_t seed) {
  GVC_CHECK(n >= 0);
  GVC_CHECK(k >= 1);
  GVC_CHECK(beta >= 0.0 && beta <= 1.0);
  GraphBuilder b(n);
  if (n <= 2) {
    if (n == 2) b.add_edge(0, 1);
    return b.build();
  }
  Pcg32 rng(seed);
  std::set<std::pair<Vertex, Vertex>> present;
  auto norm = [](Vertex u, Vertex v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  };
  // Ring lattice.
  for (Vertex u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      Vertex v = static_cast<Vertex>((u + j) % n);
      if (u == v) continue;
      present.insert(norm(u, v));
    }
  }
  // Rewire each lattice edge with probability beta.
  std::vector<std::pair<Vertex, Vertex>> edges(present.begin(), present.end());
  for (auto& [u, v] : edges) {
    if (!rng.chance(beta)) continue;
    // Rewire the v endpoint to a uniform random non-neighbor of u.
    for (int attempt = 0; attempt < 32; ++attempt) {
      Vertex w = static_cast<Vertex>(rng.below(static_cast<std::uint32_t>(n)));
      if (w == u || present.count(norm(u, w))) continue;
      present.erase(norm(u, v));
      present.insert(norm(u, w));
      v = w;
      break;
    }
  }
  for (auto [u, v] : present) b.add_edge(u, v);
  return b.build();
}

CsrGraph power_grid(Vertex n, double extra_edge_frac, std::uint64_t seed) {
  GVC_CHECK(n >= 0);
  GVC_CHECK(extra_edge_frac >= 0.0);
  GraphBuilder b(n);
  if (n <= 1) return b.build();
  Pcg32 rng(seed);
  // Random spanning tree via random attachment with locality: vertex v
  // attaches to a vertex in the recent window, mimicking the chain-like
  // topology of transmission grids (high diameter, low degree).
  for (Vertex v = 1; v < n; ++v) {
    Vertex window = static_cast<Vertex>(std::min<Vertex>(v, 16));
    Vertex u = static_cast<Vertex>(v - 1 - rng.below(static_cast<std::uint32_t>(window)));
    b.add_edge(u, v);
  }
  auto extras = static_cast<std::int64_t>(extra_edge_frac * static_cast<double>(n));
  for (std::int64_t i = 0; i < extras; ++i) {
    auto u = static_cast<Vertex>(rng.below(static_cast<std::uint32_t>(n)));
    // Local shortcut within a bounded span.
    Vertex span = static_cast<Vertex>(2 + rng.below(62));
    Vertex lo = static_cast<Vertex>(std::max<Vertex>(0, u - span));
    Vertex hi = static_cast<Vertex>(std::min<Vertex>(n - 1, u + span));
    auto v = static_cast<Vertex>(lo + rng.below(static_cast<std::uint32_t>(hi - lo + 1)));
    if (u != v) b.add_edge(u, v);
  }
  return b.build();
}

CsrGraph bipartite(Vertex n_left, Vertex n_right, std::int64_t edges,
                   std::uint64_t seed) {
  GVC_CHECK(n_left >= 0 && n_right >= 0);
  const std::int64_t max_edges =
      static_cast<std::int64_t>(n_left) * static_cast<std::int64_t>(n_right);
  GVC_CHECK(edges >= 0 && edges <= max_edges);
  GraphBuilder b(static_cast<Vertex>(n_left + n_right));
  Pcg32 rng(seed);
  std::set<std::int64_t> chosen;
  while (static_cast<std::int64_t>(chosen.size()) < edges) {
    auto l = static_cast<std::int64_t>(rng.below(static_cast<std::uint32_t>(n_left)));
    auto r = static_cast<std::int64_t>(rng.below(static_cast<std::uint32_t>(n_right)));
    if (chosen.insert(l * n_right + r).second)
      b.add_edge(static_cast<Vertex>(l), static_cast<Vertex>(n_left + r));
  }
  return b.build();
}

CsrGraph random_tree(Vertex n, std::uint64_t seed) {
  GVC_CHECK(n >= 0);
  GraphBuilder b(n);
  if (n <= 1) return b.build();
  if (n == 2) { b.add_edge(0, 1); return b.build(); }
  Pcg32 rng(seed);
  // Prüfer sequence decoding: uniform over all labeled trees.
  std::vector<Vertex> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = static_cast<Vertex>(rng.below(static_cast<std::uint32_t>(n)));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (Vertex x : prufer) ++deg[static_cast<std::size_t>(x)];
  std::set<Vertex> leaves;
  for (Vertex v = 0; v < n; ++v)
    if (deg[static_cast<std::size_t>(v)] == 1) leaves.insert(v);
  for (Vertex x : prufer) {
    Vertex leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    b.add_edge(leaf, x);
    if (--deg[static_cast<std::size_t>(x)] == 1) leaves.insert(x);
  }
  Vertex u = *leaves.begin();
  Vertex v = *std::next(leaves.begin());
  b.add_edge(u, v);
  return b.build();
}

CsrGraph empty_graph(Vertex n) { return GraphBuilder(n).build(); }

CsrGraph complete(Vertex n) {
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

CsrGraph path(Vertex n) {
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v - 1, v);
  return b.build();
}

CsrGraph cycle(Vertex n) {
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v - 1, v);
  if (n >= 3) b.add_edge(n - 1, 0);
  return b.build();
}

CsrGraph star(Vertex n) {
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

CsrGraph complete_bipartite(Vertex a, Vertex b_) {
  GraphBuilder b(static_cast<Vertex>(a + b_));
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b_; ++v) b.add_edge(u, static_cast<Vertex>(a + v));
  return b.build();
}

CsrGraph petersen() {
  GraphBuilder b(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
  for (Vertex i = 0; i < 5; ++i) {
    b.add_edge(i, static_cast<Vertex>((i + 1) % 5));
    b.add_edge(static_cast<Vertex>(5 + i), static_cast<Vertex>(5 + (i + 2) % 5));
    b.add_edge(i, static_cast<Vertex>(5 + i));
  }
  return b.build();
}

CsrGraph grid2d(Vertex rows, Vertex cols) {
  GVC_CHECK(rows >= 0 && cols >= 0);
  GraphBuilder b(static_cast<Vertex>(rows * cols));
  auto id = [cols](Vertex r, Vertex c) { return static_cast<Vertex>(r * cols + c); };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

}  // namespace gvc::graph
