#include "graph/matching.hpp"

#include <limits>
#include <queue>

#include "util/check.hpp"

namespace gvc::graph {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

struct HopcroftKarp {
  int n_left, n_right;
  const std::vector<std::vector<int>>& adj;
  std::vector<int> match_l, match_r, dist;

  HopcroftKarp(int nl, int nr, const std::vector<std::vector<int>>& a)
      : n_left(nl),
        n_right(nr),
        adj(a),
        match_l(static_cast<std::size_t>(nl), -1),
        match_r(static_cast<std::size_t>(nr), -1),
        dist(static_cast<std::size_t>(nl), 0) {}

  bool bfs() {
    std::queue<int> q;
    bool free_right_reachable = false;
    for (int l = 0; l < n_left; ++l) {
      if (match_l[static_cast<std::size_t>(l)] == -1) {
        dist[static_cast<std::size_t>(l)] = 0;
        q.push(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    while (!q.empty()) {
      int l = q.front();
      q.pop();
      for (int r : adj[static_cast<std::size_t>(l)]) {
        int l2 = match_r[static_cast<std::size_t>(r)];
        if (l2 == -1) {
          free_right_reachable = true;
        } else if (dist[static_cast<std::size_t>(l2)] == kInf) {
          dist[static_cast<std::size_t>(l2)] =
              dist[static_cast<std::size_t>(l)] + 1;
          q.push(l2);
        }
      }
    }
    return free_right_reachable;
  }

  bool dfs(int l) {
    for (int r : adj[static_cast<std::size_t>(l)]) {
      int l2 = match_r[static_cast<std::size_t>(r)];
      if (l2 == -1 || (dist[static_cast<std::size_t>(l2)] ==
                           dist[static_cast<std::size_t>(l)] + 1 &&
                       dfs(l2))) {
        match_l[static_cast<std::size_t>(l)] = r;
        match_r[static_cast<std::size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  }

  void run() {
    while (bfs()) {
      for (int l = 0; l < n_left; ++l)
        if (match_l[static_cast<std::size_t>(l)] == -1) dfs(l);
    }
  }
};

}  // namespace

std::vector<int> hopcroft_karp(int n_left, int n_right,
                               const std::vector<std::vector<int>>& adj) {
  GVC_CHECK(n_left >= 0 && n_right >= 0);
  GVC_CHECK(static_cast<int>(adj.size()) == n_left);
  for (const auto& nbrs : adj)
    for (int r : nbrs) GVC_CHECK_MSG(0 <= r && r < n_right, "right id range");
  HopcroftKarp hk(n_left, n_right, adj);
  hk.run();
  return hk.match_l;
}

int double_cover_matching_size(const CsrGraph& g) {
  const int n = g.num_vertices();
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    adj[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
  }
  auto match = hopcroft_karp(n, n, adj);
  int matched = 0;
  for (int l = 0; l < n; ++l)
    if (match[static_cast<std::size_t>(l)] != -1) ++matched;
  return matched;
}

KonigCover konig_cover(int n_left, int n_right,
                       const std::vector<std::vector<int>>& adj) {
  HopcroftKarp hk(n_left, n_right, adj);
  for (const auto& nbrs : adj)
    for (int r : nbrs) GVC_CHECK_MSG(0 <= r && r < n_right, "right id range");
  hk.run();

  // König: Z = free left vertices and everything alternating-reachable;
  // cover = (L \ Z) ∪ (R ∩ Z).
  std::vector<bool> visited_l(static_cast<std::size_t>(n_left), false);
  std::vector<bool> visited_r(static_cast<std::size_t>(n_right), false);
  std::queue<int> q;
  for (int l = 0; l < n_left; ++l) {
    if (hk.match_l[static_cast<std::size_t>(l)] == -1) {
      visited_l[static_cast<std::size_t>(l)] = true;
      q.push(l);
    }
  }
  while (!q.empty()) {
    int l = q.front();
    q.pop();
    for (int r : adj[static_cast<std::size_t>(l)]) {
      if (visited_r[static_cast<std::size_t>(r)]) continue;
      visited_r[static_cast<std::size_t>(r)] = true;
      int l2 = hk.match_r[static_cast<std::size_t>(r)];
      if (l2 != -1 && !visited_l[static_cast<std::size_t>(l2)]) {
        visited_l[static_cast<std::size_t>(l2)] = true;
        q.push(l2);
      }
    }
  }

  KonigCover cover;
  cover.left.assign(static_cast<std::size_t>(n_left), false);
  cover.right.assign(static_cast<std::size_t>(n_right), false);
  for (int l = 0; l < n_left; ++l) {
    if (!visited_l[static_cast<std::size_t>(l)]) {
      cover.left[static_cast<std::size_t>(l)] = true;
      ++cover.size;
    }
  }
  for (int r = 0; r < n_right; ++r) {
    if (visited_r[static_cast<std::size_t>(r)]) {
      cover.right[static_cast<std::size_t>(r)] = true;
      ++cover.size;
    }
  }
  return cover;
}

}  // namespace gvc::graph
