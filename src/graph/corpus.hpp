#pragma once

// Multi-graph corpus streams. Graph-mining workloads (the gspan family of
// datasets in particular) ship as one file holding thousands-to-millions of
// small graphs; the batch solve path (parallel/batch.hpp, SolveService::
// submit_batch) consumes them one at a time through the reader here, never
// materializing the whole corpus.
//
// Three stream formats are supported, autodetected from the first
// significant line:
//
//   * gspan transactions — records start with "t # <id>", followed by
//     "v <id> <label>" vertex lines (ids 0-based, sequential) and
//     "e <u> <v> <label>" edge lines. First token 't' selects this format.
//   * DIMACS stream — plain DIMACS records ("c" comments, "p edge <n> <m>",
//     "e <u> <v>") concatenated back to back; each "p" line starts a new
//     record. First token 'p' or 'c' selects this format.
//   * edge-list stream — whitespace "u v" pairs with "#"/"%" comments,
//     records separated by one or more blank lines, vertex ids compacted
//     per record. Anything else selects this format.
//
// Error contract (inherited from graph/io.hpp's try_* readers): a malformed
// record is *skipped and counted*, never fatal. The reader resynchronizes at
// the next record boundary — the next "t" line (gspan), the next "p" line or
// blank line (DIMACS), the next blank line (edge list) — records a
// CorpusSkip naming the record index, line number, and reason, and carries
// on. One corrupt graph in a 10k-instance stream costs one skip, not the
// process.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gvc::graph {

enum class CorpusFormat { kAuto, kGspan, kDimacs, kEdgeList };

const char* corpus_format_name(CorpusFormat f);

/// One well-formed graph pulled from the stream.
struct CorpusRecord {
  long long index = 0;  ///< 0-based record position, counting skipped ones.
  long long line = 0;   ///< 1-based line where the record started.
  std::string id;       ///< gspan transaction id; empty for other formats.
  CsrGraph graph;
};

/// One record the reader gave up on.
struct CorpusSkip {
  long long index = 0;  ///< record position the skip occupies.
  long long line = 0;   ///< line the diagnostic points at.
  std::string reason;
};

/// Pull-based reader over a multi-graph stream. Not thread-safe; drive it
/// from one thread and hand the yielded graphs off.
class CorpusReader {
 public:
  /// The stream must outlive the reader. kAuto sniffs the format from the
  /// first significant line (resolved lazily on the first next()).
  explicit CorpusReader(std::istream& in,
                        CorpusFormat format = CorpusFormat::kAuto);

  /// Yields the next well-formed graph, silently absorbing malformed
  /// records into skips(). std::nullopt means end of stream — permanent;
  /// further calls keep returning nullopt.
  std::optional<CorpusRecord> next();

  /// The resolved format (kAuto until the first next() on an auto reader).
  CorpusFormat format() const { return resolved_; }

  /// Diagnostics for every record skipped so far, in stream order.
  const std::vector<CorpusSkip>& skips() const { return skips_; }

  /// Records consumed so far: yielded + skipped.
  long long records_read() const { return next_index_; }
  long long records_skipped() const {
    return static_cast<long long>(skips_.size());
  }

 private:
  bool get_line(std::string& out);
  void push_back(std::string line);
  void skip_record(long long line, std::string reason);
  bool detect_format();

  std::optional<CorpusRecord> next_gspan();
  std::optional<CorpusRecord> next_dimacs();
  std::optional<CorpusRecord> next_edge_list();

  void resync_to_token(char token);  // consume until a line starting `token`
  void resync_to_blank();            // consume until a blank line

  std::istream& in_;
  CorpusFormat resolved_;
  long long line_no_ = 0;
  bool has_pending_ = false;
  std::string pending_;
  long long next_index_ = 0;
  std::vector<CorpusSkip> skips_;
};

/// Writes one gspan transaction record ("t # <id>", "v <i> 0", "e <u> <v> 0").
/// Concatenating calls produces a valid gspan corpus.
void write_gspan(std::ostream& out, const CsrGraph& g, const std::string& id);

}  // namespace gvc::graph
