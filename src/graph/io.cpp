#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::graph {

using util::parse_int;
using util::split_ws;
using util::starts_with;
using util::to_lower;
using util::trim;

namespace {

[[noreturn]] void malformed(const std::string& what, int line_no) {
  GVC_CHECK_MSG(false,
                util::format("malformed graph file: %s (line %d)",
                             what.c_str(), line_no)
                    .c_str());
  __builtin_unreachable();
}

}  // namespace

CsrGraph read_dimacs(std::istream& in) {
  std::string line;
  int line_no = 0;
  bool have_header = false;
  Vertex n = 0;
  GraphBuilder builder(0);
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 'p') {
      if (have_header) malformed("duplicate p line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 4) malformed("short p line", line_no);
      long long nn = 0, mm = 0;
      if (!parse_int(fields[2], nn) || !parse_int(fields[3], mm) || nn < 0)
        malformed("bad p line numbers", line_no);
      n = static_cast<Vertex>(nn);
      builder = GraphBuilder(n);
      have_header = true;
      continue;
    }
    if (t[0] == 'e') {
      if (!have_header) malformed("edge before p line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 3) malformed("short e line", line_no);
      long long u = 0, v = 0;
      if (!parse_int(fields[1], u) || !parse_int(fields[2], v))
        malformed("bad e line numbers", line_no);
      if (u < 1 || u > n || v < 1 || v > n)
        malformed("edge endpoint out of range", line_no);
      builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
      continue;
    }
    malformed("unknown record type", line_no);
  }
  if (!have_header) malformed("missing p line", line_no);
  return builder.build();
}

void write_dimacs(std::ostream& out, const CsrGraph& g,
                  const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << "e " << (v + 1) << ' ' << (u + 1) << '\n';
}

CsrGraph read_metis(std::istream& in) {
  std::string line;
  int line_no = 0;
  // Header: skip comment lines starting with '%'.
  long long n = 0, m = 0, fmt = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 2) malformed("short METIS header", line_no);
    if (!parse_int(fields[0], n) || !parse_int(fields[1], m) || n < 0)
      malformed("bad METIS header", line_no);
    if (fields.size() >= 3 && (!parse_int(fields[2], fmt) || fmt != 0))
      malformed("weighted METIS format unsupported", line_no);
    break;
  }
  GraphBuilder builder(static_cast<Vertex>(n));
  Vertex v = 0;
  while (v < n && std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (!t.empty() && t[0] == '%') continue;
    for (const auto& f : split_ws(t)) {
      long long u = 0;
      if (!parse_int(f, u)) malformed("bad METIS neighbor", line_no);
      if (u < 1 || u > n) malformed("METIS neighbor out of range", line_no);
      builder.add_edge(v, static_cast<Vertex>(u - 1));
    }
    ++v;
  }
  if (v != n) malformed("METIS file truncated", line_no);
  return builder.build();
}

void write_metis(std::ostream& out, const CsrGraph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (Vertex u : g.neighbors(v)) {
      if (!first) out << ' ';
      out << (u + 1);
      first = false;
    }
    out << '\n';
  }
}

CsrGraph read_matrix_market(std::istream& in) {
  std::string line;
  int line_no = 0;
  GVC_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty mtx file");
  ++line_no;
  auto banner = to_lower(trim(line));
  if (!starts_with(banner, "%%matrixmarket"))
    malformed("missing MatrixMarket banner", line_no);
  if (banner.find("coordinate") == std::string::npos)
    malformed("only coordinate mtx supported", line_no);
  // Header line: rows cols entries.
  long long rows = 0, cols = 0, entries = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 3) malformed("short mtx size line", line_no);
    if (!parse_int(fields[0], rows) || !parse_int(fields[1], cols) ||
        !parse_int(fields[2], entries))
      malformed("bad mtx size line", line_no);
    break;
  }
  if (rows != cols) malformed("mtx adjacency matrix must be square", line_no);
  GraphBuilder builder(static_cast<Vertex>(rows));
  long long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 2) malformed("short mtx entry", line_no);
    long long u = 0, v = 0;
    if (!parse_int(fields[0], u) || !parse_int(fields[1], v))
      malformed("bad mtx entry", line_no);
    if (u < 1 || u > rows || v < 1 || v > rows)
      malformed("mtx entry out of range", line_no);
    builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
    ++seen;
  }
  if (seen != entries) malformed("mtx file truncated", line_no);
  return builder.build();
}

CsrGraph read_edge_list(std::istream& in) {
  std::string line;
  int line_no = 0;
  std::vector<std::pair<long long, long long>> raw;
  std::map<long long, Vertex> compact;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 2) malformed("short edge list line", line_no);
    long long u = 0, v = 0;
    if (!parse_int(fields[0], u) || !parse_int(fields[1], v))
      malformed("bad edge list line", line_no);
    raw.emplace_back(u, v);
    compact.emplace(u, 0);
    compact.emplace(v, 0);
  }
  Vertex next = 0;
  for (auto& [id, mapped] : compact) mapped = next++;
  GraphBuilder builder(next);
  for (auto [u, v] : raw) builder.add_edge(compact.at(u), compact.at(v));
  return builder.build();
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  out << "# gvc edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << v << ' ' << u << '\n';
}

CsrGraph read_pace(std::istream& in) {
  std::string line;
  int line_no = 0;
  bool have_header = false;
  long long n = 0, m = 0;
  GraphBuilder builder(0);
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 'p') {
      if (have_header) malformed("duplicate p line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 4) malformed("short p line", line_no);
      const auto desc = to_lower(fields[1]);
      if (desc != "td" && desc != "vc" && desc != "edge")
        malformed("unknown PACE problem descriptor", line_no);
      if (!parse_int(fields[2], n) || !parse_int(fields[3], m) || n < 0 ||
          m < 0)
        malformed("bad p line numbers", line_no);
      builder = GraphBuilder(static_cast<Vertex>(n));
      have_header = true;
      continue;
    }
    if (!have_header) malformed("edge before p line", line_no);
    auto fields = split_ws(t);
    if (fields.size() < 2) malformed("short edge line", line_no);
    long long u = 0, v = 0;
    if (!parse_int(fields[0], u) || !parse_int(fields[1], v))
      malformed("bad edge line numbers", line_no);
    if (u < 1 || u > n || v < 1 || v > n)
      malformed("edge endpoint out of range", line_no);
    builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
  }
  if (!have_header) malformed("missing p line", line_no);
  return builder.build();
}

void write_pace(std::ostream& out, const CsrGraph& g,
                const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p td " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << (v + 1) << ' ' << (u + 1) << '\n';
}

void write_pace_solution(std::ostream& out, Vertex num_vertices,
                         const std::vector<Vertex>& cover) {
  out << "s vc " << num_vertices << ' ' << cover.size() << '\n';
  for (Vertex v : cover) out << (v + 1) << '\n';
}

std::vector<Vertex> read_pace_solution(std::istream& in) {
  std::string line;
  int line_no = 0;
  bool have_header = false;
  long long n = 0, k = 0;
  std::vector<Vertex> cover;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 's') {
      if (have_header) malformed("duplicate s line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 4 || to_lower(fields[1]) != "vc")
        malformed("bad s line", line_no);
      if (!parse_int(fields[2], n) || !parse_int(fields[3], k) || n < 0 ||
          k < 0 || k > n)
        malformed("bad s line numbers", line_no);
      cover.reserve(static_cast<std::size_t>(k));
      have_header = true;
      continue;
    }
    if (!have_header) malformed("vertex before s line", line_no);
    long long v = 0;
    if (!parse_int(t, v)) malformed("bad solution vertex", line_no);
    if (v < 1 || v > n) malformed("solution vertex out of range", line_no);
    cover.push_back(static_cast<Vertex>(v - 1));
  }
  if (!have_header) malformed("missing s line", line_no);
  if (static_cast<long long>(cover.size()) != k)
    malformed("solution size disagrees with s line", line_no);
  std::sort(cover.begin(), cover.end());
  return cover;
}

namespace {

enum class Format { kDimacs, kMetis, kMtx, kPace, kEdgeList };

Format sniff(const std::string& path) {
  auto p = to_lower(path);
  if (util::ends_with(p, ".col") || util::ends_with(p, ".clq") ||
      util::ends_with(p, ".dimacs"))
    return Format::kDimacs;
  if (util::ends_with(p, ".graph") || util::ends_with(p, ".metis"))
    return Format::kMetis;
  if (util::ends_with(p, ".mtx")) return Format::kMtx;
  if (util::ends_with(p, ".gr")) return Format::kPace;
  return Format::kEdgeList;
}

}  // namespace

CsrGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  GVC_CHECK_MSG(in.good(), "cannot open graph file");
  switch (sniff(path)) {
    case Format::kDimacs:   return read_dimacs(in);
    case Format::kMetis:    return read_metis(in);
    case Format::kMtx:      return read_matrix_market(in);
    case Format::kPace:     return read_pace(in);
    case Format::kEdgeList: return read_edge_list(in);
  }
  GVC_CHECK(false);
  return {};
}

void save_graph(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  GVC_CHECK_MSG(out.good(), "cannot open output file");
  switch (sniff(path)) {
    case Format::kDimacs: write_dimacs(out, g); break;
    case Format::kPace:   write_pace(out, g); break;
    default:              write_edge_list(out, g); break;
  }
}

}  // namespace gvc::graph
