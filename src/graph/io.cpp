#include "graph/io.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gvc::graph {

using util::parse_int;
using util::split_ws;
using util::starts_with;
using util::to_lower;
using util::trim;

std::string IoError::to_string() const {
  // Path-level failures (cannot open, etc.) carry no line; the bare
  // message IS the diagnostic.
  if (!at_end && line <= 0) return what;
  if (at_end && line <= 0)
    return util::format("malformed graph file: %s (empty input)",
                        what.c_str());
  if (at_end)
    return util::format("malformed graph file: %s (end of input after "
                        "line %lld)",
                        what.c_str(), line);
  return util::format("malformed graph file: %s (line %lld)", what.c_str(),
                      line);
}

namespace {

std::atomic<Vertex> g_max_header_vertices{std::numeric_limits<Vertex>::max()};

/// True when a header-declared vertex count is representable and within the
/// cap. Every reader must pass counts through here BEFORE the Vertex cast
/// and before sizing a GraphBuilder — an unchecked cast wraps negative and
/// turns one hostile header line into a process abort.
bool header_count_ok(long long nn) {
  return nn >= 0 &&
         nn <= static_cast<long long>(
                   g_max_header_vertices.load(std::memory_order_relaxed));
}

IoError malformed(std::string what, long long line, bool at_end = false) {
  IoError e;
  e.what = std::move(what);
  e.line = line;
  e.at_end = at_end;
  return e;
}

/// Fail-fast adapter for the legacy read_*() entry points: aborts with the
/// error's full message, logs non-fatal warnings at WARN.
template <typename T>
T value_or_die(IoResult<T> r) {
  if (!r.ok()) {
    const std::string msg = r.error().to_string();
    GVC_CHECK_MSG(false, msg.c_str());
  }
  if (!r.warning.empty()) GVC_LOG_WARN("%s", r.warning.c_str());
  return std::move(r.value());
}

}  // namespace

Vertex max_header_vertices() {
  return g_max_header_vertices.load(std::memory_order_relaxed);
}

Vertex set_max_header_vertices(Vertex cap) {
  if (cap < 0) cap = 0;
  return g_max_header_vertices.exchange(cap, std::memory_order_relaxed);
}

IoResult<CsrGraph> try_read_dimacs(std::istream& in, bool strict_edge_count) {
  std::string line;
  long long line_no = 0;
  long long header_line = 0;
  bool have_header = false;
  Vertex n = 0;
  long long mm = 0;
  GraphBuilder builder(0);
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 'p') {
      if (have_header) return malformed("duplicate p line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 4) return malformed("short p line", line_no);
      long long nn = 0;
      if (!parse_int(fields[2], nn) || !parse_int(fields[3], mm) || nn < 0 ||
          mm < 0)
        return malformed("bad p line numbers", line_no);
      if (!header_count_ok(nn))
        return malformed("vertex count out of range", line_no);
      n = static_cast<Vertex>(nn);
      builder = GraphBuilder(n);
      have_header = true;
      header_line = line_no;
      continue;
    }
    if (t[0] == 'e') {
      if (!have_header) return malformed("edge before p line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 3) return malformed("short e line", line_no);
      long long u = 0, v = 0;
      if (!parse_int(fields[1], u) || !parse_int(fields[2], v))
        return malformed("bad e line numbers", line_no);
      if (u < 1 || u > n || v < 1 || v > n)
        return malformed("edge endpoint out of range", line_no);
      builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
      continue;
    }
    return malformed("unknown record type", line_no);
  }
  if (!have_header)
    return malformed("missing p line", line_no, /*at_end=*/true);
  IoResult<CsrGraph> result(builder.build());
  const long long body_edges =
      static_cast<long long>(result.value().num_edges());
  if (body_edges != mm) {
    // The p-line edge count used to be parsed and silently discarded; a
    // disagreement now surfaces. Warning by default (wild files routinely
    // lie), hard error in strict mode (a short corpus record usually means
    // truncation).
    if (strict_edge_count)
      return malformed(util::format("edge count disagrees with p line "
                                    "(header says %lld, body has %lld)",
                                    mm, body_edges),
                       header_line);
    result.warning = util::format(
        "dimacs edge count disagrees with p line (line %lld): header says "
        "%lld, body has %lld after normalization",
        header_line, mm, body_edges);
  }
  return result;
}

CsrGraph read_dimacs(std::istream& in) {
  return value_or_die(try_read_dimacs(in));
}

void write_dimacs(std::ostream& out, const CsrGraph& g,
                  const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << "e " << (v + 1) << ' ' << (u + 1) << '\n';
}

IoResult<CsrGraph> try_read_metis(std::istream& in) {
  std::string line;
  long long line_no = 0;
  // Header: skip comment lines starting with '%'.
  long long n = 0, m = 0, fmt = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 2) return malformed("short METIS header", line_no);
    if (!parse_int(fields[0], n) || !parse_int(fields[1], m) || n < 0)
      return malformed("bad METIS header", line_no);
    if (!header_count_ok(n))
      return malformed("vertex count out of range", line_no);
    if (fields.size() >= 3 && (!parse_int(fields[2], fmt) || fmt != 0))
      return malformed("weighted METIS format unsupported", line_no);
    have_header = true;
    break;
  }
  if (!have_header)
    return malformed("missing METIS header", line_no, /*at_end=*/true);
  GraphBuilder builder(static_cast<Vertex>(n));
  Vertex v = 0;
  while (v < n && std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (!t.empty() && t[0] == '%') continue;
    for (const auto& f : split_ws(t)) {
      long long u = 0;
      if (!parse_int(f, u)) return malformed("bad METIS neighbor", line_no);
      if (u < 1 || u > n)
        return malformed("METIS neighbor out of range", line_no);
      builder.add_edge(v, static_cast<Vertex>(u - 1));
    }
    ++v;
  }
  if (v != n)
    return malformed("METIS file truncated", line_no, /*at_end=*/true);
  return builder.build();
}

CsrGraph read_metis(std::istream& in) {
  return value_or_die(try_read_metis(in));
}

void write_metis(std::ostream& out, const CsrGraph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (Vertex u : g.neighbors(v)) {
      if (!first) out << ' ';
      out << (u + 1);
      first = false;
    }
    out << '\n';
  }
}

IoResult<CsrGraph> try_read_matrix_market(std::istream& in) {
  std::string line;
  long long line_no = 0;
  if (!std::getline(in, line))
    return malformed("empty mtx file", 0, /*at_end=*/true);
  ++line_no;
  auto banner = to_lower(trim(line));
  if (!starts_with(banner, "%%matrixmarket"))
    return malformed("missing MatrixMarket banner", line_no);
  if (banner.find("coordinate") == std::string::npos)
    return malformed("only coordinate mtx supported", line_no);
  // Header line: rows cols entries.
  long long rows = 0, cols = 0, entries = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 3) return malformed("short mtx size line", line_no);
    if (!parse_int(fields[0], rows) || !parse_int(fields[1], cols) ||
        !parse_int(fields[2], entries))
      return malformed("bad mtx size line", line_no);
    have_size = true;
    break;
  }
  if (!have_size)
    return malformed("missing mtx size line", line_no, /*at_end=*/true);
  if (rows != cols)
    return malformed("mtx adjacency matrix must be square", line_no);
  if (rows < 0 || entries < 0)
    return malformed("bad mtx size line", line_no);
  if (!header_count_ok(rows))
    return malformed("vertex count out of range", line_no);
  GraphBuilder builder(static_cast<Vertex>(rows));
  long long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 2) return malformed("short mtx entry", line_no);
    long long u = 0, v = 0;
    if (!parse_int(fields[0], u) || !parse_int(fields[1], v))
      return malformed("bad mtx entry", line_no);
    if (u < 1 || u > rows || v < 1 || v > rows)
      return malformed("mtx entry out of range", line_no);
    builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
    ++seen;
  }
  if (seen != entries)
    return malformed("mtx file truncated", line_no, /*at_end=*/true);
  return builder.build();
}

CsrGraph read_matrix_market(std::istream& in) {
  return value_or_die(try_read_matrix_market(in));
}

IoResult<CsrGraph> try_read_edge_list(std::istream& in) {
  std::string line;
  long long line_no = 0;
  std::vector<std::pair<long long, long long>> raw;
  std::map<long long, Vertex> compact;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == '%') continue;
    auto fields = split_ws(t);
    if (fields.size() < 2) return malformed("short edge list line", line_no);
    long long u = 0, v = 0;
    if (!parse_int(fields[0], u) || !parse_int(fields[1], v))
      return malformed("bad edge list line", line_no);
    raw.emplace_back(u, v);
    compact.emplace(u, 0);
    compact.emplace(v, 0);
  }
  Vertex next = 0;
  for (auto& [id, mapped] : compact) mapped = next++;
  GraphBuilder builder(next);
  for (auto [u, v] : raw) builder.add_edge(compact.at(u), compact.at(v));
  return builder.build();
}

CsrGraph read_edge_list(std::istream& in) {
  return value_or_die(try_read_edge_list(in));
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  out << "# gvc edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << v << ' ' << u << '\n';
}

IoResult<CsrGraph> try_read_pace(std::istream& in) {
  std::string line;
  long long line_no = 0;
  bool have_header = false;
  long long n = 0, m = 0;
  GraphBuilder builder(0);
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 'p') {
      if (have_header) return malformed("duplicate p line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 4) return malformed("short p line", line_no);
      const auto desc = to_lower(fields[1]);
      if (desc != "td" && desc != "vc" && desc != "edge")
        return malformed("unknown PACE problem descriptor", line_no);
      if (!parse_int(fields[2], n) || !parse_int(fields[3], m) || n < 0 ||
          m < 0)
        return malformed("bad p line numbers", line_no);
      if (!header_count_ok(n))
        return malformed("vertex count out of range", line_no);
      builder = GraphBuilder(static_cast<Vertex>(n));
      have_header = true;
      continue;
    }
    if (!have_header) return malformed("edge before p line", line_no);
    auto fields = split_ws(t);
    if (fields.size() < 2) return malformed("short edge line", line_no);
    long long u = 0, v = 0;
    if (!parse_int(fields[0], u) || !parse_int(fields[1], v))
      return malformed("bad edge line numbers", line_no);
    if (u < 1 || u > n || v < 1 || v > n)
      return malformed("edge endpoint out of range", line_no);
    builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
  }
  if (!have_header)
    return malformed("missing p line", line_no, /*at_end=*/true);
  return builder.build();
}

CsrGraph read_pace(std::istream& in) { return value_or_die(try_read_pace(in)); }

void write_pace(std::ostream& out, const CsrGraph& g,
                const std::string& comment) {
  if (!comment.empty()) out << "c " << comment << '\n';
  out << "p td " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << (v + 1) << ' ' << (u + 1) << '\n';
}

void write_pace_solution(std::ostream& out, Vertex num_vertices,
                         const std::vector<Vertex>& cover) {
  out << "s vc " << num_vertices << ' ' << cover.size() << '\n';
  for (Vertex v : cover) out << (v + 1) << '\n';
}

IoResult<std::vector<Vertex>> try_read_pace_solution(std::istream& in) {
  std::string line;
  long long line_no = 0;
  bool have_header = false;
  long long n = 0, k = 0;
  std::vector<Vertex> cover;
  while (std::getline(in, line)) {
    ++line_no;
    auto t = trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 's') {
      if (have_header) return malformed("duplicate s line", line_no);
      auto fields = split_ws(t);
      if (fields.size() < 4 || to_lower(fields[1]) != "vc")
        return malformed("bad s line", line_no);
      if (!parse_int(fields[2], n) || !parse_int(fields[3], k) || n < 0 ||
          k < 0 || k > n)
        return malformed("bad s line numbers", line_no);
      if (!header_count_ok(n))
        return malformed("vertex count out of range", line_no);
      cover.reserve(static_cast<std::size_t>(k));
      have_header = true;
      continue;
    }
    if (!have_header) return malformed("vertex before s line", line_no);
    long long v = 0;
    if (!parse_int(t, v)) return malformed("bad solution vertex", line_no);
    if (v < 1 || v > n)
      return malformed("solution vertex out of range", line_no);
    cover.push_back(static_cast<Vertex>(v - 1));
  }
  if (!have_header)
    return malformed("missing s line", line_no, /*at_end=*/true);
  if (static_cast<long long>(cover.size()) != k)
    return malformed("solution size disagrees with s line", line_no,
                     /*at_end=*/true);
  std::sort(cover.begin(), cover.end());
  return cover;
}

std::vector<Vertex> read_pace_solution(std::istream& in) {
  return value_or_die(try_read_pace_solution(in));
}

namespace {

enum class Format { kDimacs, kMetis, kMtx, kPace, kEdgeList };

Format sniff(const std::string& path) {
  auto p = to_lower(path);
  if (util::ends_with(p, ".col") || util::ends_with(p, ".clq") ||
      util::ends_with(p, ".dimacs"))
    return Format::kDimacs;
  if (util::ends_with(p, ".graph") || util::ends_with(p, ".metis"))
    return Format::kMetis;
  if (util::ends_with(p, ".mtx")) return Format::kMtx;
  if (util::ends_with(p, ".gr")) return Format::kPace;
  return Format::kEdgeList;
}

}  // namespace

IoResult<CsrGraph> try_load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    return malformed(util::format("cannot open graph file: %s", path.c_str()),
                     0);
  switch (sniff(path)) {
    case Format::kDimacs:   return try_read_dimacs(in);
    case Format::kMetis:    return try_read_metis(in);
    case Format::kMtx:      return try_read_matrix_market(in);
    case Format::kPace:     return try_read_pace(in);
    case Format::kEdgeList: return try_read_edge_list(in);
  }
  GVC_CHECK(false);
  return malformed("unreachable", 0);
}

CsrGraph load_graph(const std::string& path) {
  return value_or_die(try_load_graph(path));
}

void save_graph(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  GVC_CHECK_MSG(out.good(), "cannot open output file");
  switch (sniff(path)) {
    case Format::kDimacs: write_dimacs(out, g); break;
    case Format::kPace:   write_pace(out, g); break;
    default:              write_edge_list(out, g); break;
  }
}

}  // namespace gvc::graph
