#include "graph/ops.hpp"

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace gvc::graph {

CsrGraph complement(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    auto nbrs = g.neighbors(u);
    std::size_t i = 0;
    for (Vertex v = u + 1; v < n; ++v) {
      while (i < nbrs.size() && nbrs[i] < v) ++i;
      bool adjacent = i < nbrs.size() && nbrs[i] == v;
      if (!adjacent) b.add_edge(u, v);
    }
  }
  return b.build();
}

CsrGraph induced_subgraph(const CsrGraph& g, const std::vector<Vertex>& keep) {
  std::vector<Vertex> remap(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    Vertex v = keep[i];
    GVC_CHECK(v >= 0 && v < g.num_vertices());
    GVC_CHECK_MSG(remap[static_cast<std::size_t>(v)] == -1,
                  "duplicate vertex in induced_subgraph");
    remap[static_cast<std::size_t>(v)] = static_cast<Vertex>(i);
  }
  GraphBuilder b(static_cast<Vertex>(keep.size()));
  for (Vertex v : keep) {
    for (Vertex u : g.neighbors(v)) {
      Vertex ru = remap[static_cast<std::size_t>(u)];
      if (ru != -1)
        b.add_edge(remap[static_cast<std::size_t>(v)], ru);
    }
  }
  return b.build();
}

std::vector<int> connected_components(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<Vertex> stack;
  int next = 0;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    comp[static_cast<std::size_t>(s)] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      Vertex v = stack.back();
      stack.pop_back();
      for (Vertex u : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(u)] == -1) {
          comp[static_cast<std::size_t>(u)] = next;
          stack.push_back(u);
        }
      }
    }
    ++next;
  }
  return comp;
}

int num_connected_components(const CsrGraph& g) {
  auto comp = connected_components(g);
  if (comp.empty()) return 0;
  return *std::max_element(comp.begin(), comp.end()) + 1;
}

int degeneracy(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  if (n == 0) return 0;
  std::vector<int> deg(static_cast<std::size_t>(n));
  int maxd = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    maxd = std::max(maxd, deg[static_cast<std::size_t>(v)]);
  }
  // Bucket-based peeling (Matula–Beck).
  std::vector<std::vector<Vertex>> buckets(static_cast<std::size_t>(maxd) + 1);
  for (Vertex v = 0; v < n; ++v)
    buckets[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])].push_back(v);
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  int degen = 0;
  int cursor = 0;
  for (Vertex iter = 0; iter < n; ++iter) {
    while (cursor <= maxd && buckets[static_cast<std::size_t>(cursor)].empty())
      ++cursor;
    // The current degree of a vertex may have dropped since it was bucketed;
    // lazily skip stale entries.
    while (cursor <= maxd) {
      auto& bucket = buckets[static_cast<std::size_t>(cursor)];
      if (bucket.empty()) { ++cursor; continue; }
      Vertex v = bucket.back();
      bucket.pop_back();
      if (removed[static_cast<std::size_t>(v)]) continue;
      if (deg[static_cast<std::size_t>(v)] != cursor) {
        buckets[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])]
            .push_back(v);
        continue;
      }
      removed[static_cast<std::size_t>(v)] = true;
      degen = std::max(degen, cursor);
      for (Vertex u : g.neighbors(v)) {
        if (!removed[static_cast<std::size_t>(u)]) {
          int& du = deg[static_cast<std::size_t>(u)];
          --du;
          buckets[static_cast<std::size_t>(du)].push_back(u);
          if (du < cursor) cursor = du;
        }
      }
      break;
    }
  }
  return degen;
}

std::int64_t triangle_count(const CsrGraph& g) {
  std::int64_t count = 0;
  const Vertex n = g.num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    auto nu = g.neighbors(u);
    for (Vertex v : nu) {
      if (v <= u) continue;
      auto nv = g.neighbors(v);
      // Count common neighbors w with w > v to count each triangle once.
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) ++i;
        else if (nu[i] > nv[j]) ++j;
        else {
          if (nu[i] > v) ++count;
          ++i; ++j;
        }
      }
    }
  }
  return count;
}

bool is_vertex_cover(const CsrGraph& g, const std::vector<Vertex>& vertices) {
  std::vector<bool> in(static_cast<std::size_t>(g.num_vertices()), false);
  for (Vertex v : vertices) {
    GVC_CHECK(v >= 0 && v < g.num_vertices());
    in[static_cast<std::size_t>(v)] = true;
  }
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (in[static_cast<std::size_t>(u)]) continue;
    for (Vertex v : g.neighbors(u))
      if (v > u && !in[static_cast<std::size_t>(v)]) return false;
  }
  return true;
}

bool is_independent_set(const CsrGraph& g, const std::vector<Vertex>& vertices) {
  std::vector<bool> in(static_cast<std::size_t>(g.num_vertices()), false);
  for (Vertex v : vertices) {
    GVC_CHECK(v >= 0 && v < g.num_vertices());
    in[static_cast<std::size_t>(v)] = true;
  }
  for (Vertex v : vertices)
    for (Vertex u : g.neighbors(v))
      if (in[static_cast<std::size_t>(u)]) return false;
  return true;
}

CsrGraph shuffle_labels(const CsrGraph& g, std::uint64_t seed,
                        std::vector<Vertex>* permutation_out) {
  const Vertex n = g.num_vertices();
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  util::Pcg32 rng(seed);
  util::shuffle(perm, rng);
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v)
        b.add_edge(perm[static_cast<std::size_t>(v)],
                   perm[static_cast<std::size_t>(u)]);
  if (permutation_out) {
    permutation_out->assign(perm.begin(), perm.end());
  }
  return b.build();
}

}  // namespace gvc::graph
