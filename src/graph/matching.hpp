#pragma once

// Maximum bipartite matching (Hopcroft–Karp). Substrate for the
// Nemhauser–Trotter LP kernelization in vc/kernelization.hpp, and a strong
// vertex cover lower bound in its own right via König's theorem.

#include <vector>

#include "graph/csr.hpp"

namespace gvc::graph {

/// Maximum matching in an explicitly bipartite graph with `n_left` left
/// vertices and `n_right` right vertices. adj[l] lists the right-side
/// neighbors (0-based within the right side) of left vertex l.
///
/// Returns match_left: for each left vertex, its matched right vertex or -1.
/// Hopcroft–Karp, O(E * sqrt(V)).
std::vector<int> hopcroft_karp(int n_left, int n_right,
                               const std::vector<std::vector<int>>& adj);

/// Size of a maximum matching of the bipartite double cover of g
/// (each vertex split into a left and right copy; edge {u,v} becomes
/// u_L–v_R and v_L–u_R). Half of it, rounded up, is the LP lower bound for
/// vertex cover — always at least the maximal-matching bound.
int double_cover_matching_size(const CsrGraph& g);

/// König vertex cover of an explicitly bipartite graph (by sides, as in
/// hopcroft_karp). Returns (in_cover_left, in_cover_right) flags whose
/// total count equals the maximum matching size.
struct KonigCover {
  std::vector<bool> left;
  std::vector<bool> right;
  int size = 0;
};
KonigCover konig_cover(int n_left, int n_right,
                       const std::vector<std::vector<int>>& adj);

}  // namespace gvc::graph
