#pragma once

// Structural summary of a graph, printed by the harness next to each
// instance (|V|, |E|, |E|/|V| — the columns of Table I) plus extra shape
// measures used to validate that generated stand-ins match their targets.

#include <string>

#include "graph/csr.hpp"

namespace gvc::graph {

struct GraphStats {
  Vertex num_vertices = 0;
  std::int64_t num_edges = 0;
  double avg_degree = 0.0;       ///< 2|E|/|V|
  double edge_vertex_ratio = 0.0;///< |E|/|V|, the column printed in Table I
  Vertex max_degree = 0;
  Vertex min_degree = 0;
  int degeneracy = 0;
  int components = 0;
  std::int64_t triangles = 0;

  /// One-line human-readable rendering.
  std::string to_string() const;
};

/// Computes all fields. Triangle counting is O(sum deg²); fine at the scales
/// used here.
GraphStats compute_stats(const CsrGraph& g);

/// The paper's high-degree vs low-degree split (Table I groups rows by
/// average degree). Threshold chosen between the two clusters of the paper's
/// instances: high-degree rows have |E|/|V| ≥ 22, low-degree rows ≤ 4.9.
bool is_high_degree(const GraphStats& s);

}  // namespace gvc::graph
