#include "graph/corpus.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace gvc::graph {

using util::parse_int;
using util::split_ws;
using util::trim;

const char* corpus_format_name(CorpusFormat f) {
  switch (f) {
    case CorpusFormat::kAuto:     return "auto";
    case CorpusFormat::kGspan:    return "gspan";
    case CorpusFormat::kDimacs:   return "dimacs";
    case CorpusFormat::kEdgeList: return "edge-list";
  }
  return "?";
}

CorpusReader::CorpusReader(std::istream& in, CorpusFormat format)
    : in_(in), resolved_(format) {}

bool CorpusReader::get_line(std::string& out) {
  if (has_pending_) {
    out = std::move(pending_);
    has_pending_ = false;
    return true;
  }
  if (!std::getline(in_, out)) return false;
  ++line_no_;
  return true;
}

void CorpusReader::push_back(std::string line) {
  GVC_CHECK(!has_pending_);
  pending_ = std::move(line);
  has_pending_ = true;
}

void CorpusReader::skip_record(long long line, std::string reason) {
  skips_.push_back(CorpusSkip{next_index_, line, std::move(reason)});
  ++next_index_;
}

void CorpusReader::resync_to_token(char token) {
  std::string line;
  while (get_line(line)) {
    auto t = trim(line);
    if (!t.empty() && t[0] == token) {
      push_back(std::move(line));
      return;
    }
  }
}

void CorpusReader::resync_to_blank() {
  std::string line;
  while (get_line(line)) {
    if (trim(line).empty()) return;
  }
}

bool CorpusReader::detect_format() {
  // Peek past blank and comment lines for the first significant token.
  // '#'/'%' comments are legal in edge lists and never start a gspan or
  // DIMACS stream, so they don't decide anything.
  std::string line;
  while (get_line(line)) {
    auto t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == '%') continue;
    if (t[0] == 't')
      resolved_ = CorpusFormat::kGspan;
    else if (t[0] == 'p' || t[0] == 'c')
      resolved_ = CorpusFormat::kDimacs;
    else
      resolved_ = CorpusFormat::kEdgeList;
    push_back(std::move(line));
    return true;
  }
  return false;  // nothing but blanks/comments: an empty corpus
}

std::optional<CorpusRecord> CorpusReader::next() {
  if (resolved_ == CorpusFormat::kAuto && !detect_format()) return std::nullopt;
  // Each attempt either yields, records a skip and loops, or ends the
  // stream. Bounded by input size: every iteration consumes lines.
  for (;;) {
    std::optional<CorpusRecord> rec;
    const auto skips_before = skips_.size();
    switch (resolved_) {
      case CorpusFormat::kGspan:    rec = next_gspan(); break;
      case CorpusFormat::kDimacs:   rec = next_dimacs(); break;
      case CorpusFormat::kEdgeList: rec = next_edge_list(); break;
      case CorpusFormat::kAuto:     GVC_CHECK(false); break;
    }
    if (rec) return rec;
    if (skips_.size() == skips_before) return std::nullopt;  // end of stream
  }
}

// --------------------------------------------------------------------------
// gspan transactions

std::optional<CorpusRecord> CorpusReader::next_gspan() {
  std::string line;
  long long start_line = 0;
  std::string id;
  // Find the record's "t" line.
  for (;;) {
    if (!get_line(line)) return std::nullopt;
    auto t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == '%') continue;
    if (t[0] != 't') {
      skip_record(line_no_, "expected t line");
      resync_to_token('t');
      return std::nullopt;  // caller loops; skip was recorded
    }
    auto fields = split_ws(t);
    if (fields.size() >= 3) id = fields[2];
    start_line = line_no_;
    break;
  }
  // Body: "v <id> <label>" then "e <u> <v> <label>", until the next "t".
  Vertex n = 0;
  std::vector<std::pair<Vertex, Vertex>> edges;
  while (get_line(line)) {
    auto t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == '%') continue;
    if (t[0] == 't') {
      push_back(std::move(line));
      break;
    }
    auto fields = split_ws(t);
    if (t[0] == 'v') {
      long long vid = 0;
      if (fields.size() < 2 || !parse_int(fields[1], vid)) {
        skip_record(line_no_, "bad v line");
        resync_to_token('t');
        return std::nullopt;
      }
      if (vid != n) {
        skip_record(line_no_, "non-sequential vertex id");
        resync_to_token('t');
        return std::nullopt;
      }
      ++n;
      continue;
    }
    if (t[0] == 'e') {
      long long u = 0, v = 0;
      if (fields.size() < 3 || !parse_int(fields[1], u) ||
          !parse_int(fields[2], v)) {
        skip_record(line_no_, "bad e line");
        resync_to_token('t');
        return std::nullopt;
      }
      if (u < 0 || u >= n || v < 0 || v >= n) {
        skip_record(line_no_, "edge endpoint out of range");
        resync_to_token('t');
        return std::nullopt;
      }
      edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
      continue;
    }
    skip_record(line_no_, "unknown gspan record type");
    resync_to_token('t');
    return std::nullopt;
  }
  if (n == 0) {
    skip_record(start_line, "empty graph record");
    return std::nullopt;
  }
  GraphBuilder builder(n);
  for (auto [u, v] : edges) builder.add_edge(u, v);
  CorpusRecord rec;
  rec.index = next_index_++;
  rec.line = start_line;
  rec.id = std::move(id);
  rec.graph = builder.build();
  return rec;
}

// --------------------------------------------------------------------------
// DIMACS stream: concatenated records, each "p" line starting a new one.

std::optional<CorpusRecord> CorpusReader::next_dimacs() {
  std::string line;
  long long start_line = 0;
  long long header_line = 0;
  Vertex n = 0;
  long long mm = 0;
  bool have_header = false;
  // Leading comments + the "p" line.
  for (;;) {
    if (!get_line(line)) {
      if (start_line != 0) {
        // Comments without a header at end of stream: a truncated record.
        skip_record(start_line, "missing p line");
      }
      return std::nullopt;
    }
    auto t = trim(line);
    if (t.empty()) {
      if (start_line != 0) {
        skip_record(start_line, "missing p line");
        return std::nullopt;
      }
      continue;
    }
    if (start_line == 0) start_line = line_no_;
    if (t[0] == 'c') continue;
    if (t[0] != 'p') {
      skip_record(line_no_, "expected p line");
      resync_to_token('p');
      return std::nullopt;
    }
    auto fields = split_ws(t);
    long long nn = 0;
    if (fields.size() < 4 || !parse_int(fields[2], nn) ||
        !parse_int(fields[3], mm) || nn < 0 || mm < 0) {
      skip_record(line_no_, "bad p line");
      resync_to_token('p');
      return std::nullopt;
    }
    // Same cap as io.cpp's readers: the header count sizes the builder
    // before any body validation, so an oversized or Vertex-overflowing
    // count must cost one skip, never an abort or a giant allocation.
    if (nn > static_cast<long long>(max_header_vertices())) {
      skip_record(line_no_, "vertex count out of range");
      resync_to_token('p');
      return std::nullopt;
    }
    n = static_cast<Vertex>(nn);
    header_line = line_no_;
    have_header = true;
    break;
  }
  GVC_CHECK(have_header);
  // Body: "e" lines and comments, until the next "p" line, a blank line,
  // or end of stream.
  GraphBuilder builder(n);
  while (get_line(line)) {
    auto t = trim(line);
    if (t.empty()) break;
    if (t[0] == 'c') continue;
    if (t[0] == 'p') {
      push_back(std::move(line));
      break;
    }
    if (t[0] != 'e') {
      skip_record(line_no_, "unknown record type");
      resync_to_token('p');
      return std::nullopt;
    }
    auto fields = split_ws(t);
    long long u = 0, v = 0;
    if (fields.size() < 3 || !parse_int(fields[1], u) ||
        !parse_int(fields[2], v)) {
      skip_record(line_no_, "bad e line");
      resync_to_token('p');
      return std::nullopt;
    }
    if (u < 1 || u > n || v < 1 || v > n) {
      skip_record(line_no_, "edge endpoint out of range");
      resync_to_token('p');
      return std::nullopt;
    }
    builder.add_edge(static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1));
  }
  if (n == 0) {
    skip_record(header_line, "empty graph record");
    return std::nullopt;
  }
  CorpusRecord rec;
  rec.index = next_index_;
  rec.line = start_line;
  rec.graph = builder.build();
  // In a stream, a body shorter than the header promises almost always
  // means the record was truncated — the strict form of the single-graph
  // reader's edge-count check (satellite 2) is the right default here.
  const long long body_edges = static_cast<long long>(rec.graph.num_edges());
  if (body_edges != mm) {
    skip_record(header_line,
                util::format("edge count disagrees with p line (header says "
                             "%lld, body has %lld)",
                             mm, body_edges));
    return std::nullopt;
  }
  ++next_index_;
  return rec;
}

// --------------------------------------------------------------------------
// Edge-list stream: blank-line-separated "u v" blocks.

std::optional<CorpusRecord> CorpusReader::next_edge_list() {
  std::string line;
  long long start_line = 0;
  std::vector<std::pair<long long, long long>> raw;
  std::map<long long, Vertex> compact;
  while (get_line(line)) {
    auto t = trim(line);
    if (t.empty()) {
      if (start_line != 0) break;  // record separator
      continue;                    // leading blank run
    }
    if (t[0] == '#' || t[0] == '%') continue;
    if (start_line == 0) start_line = line_no_;
    auto fields = split_ws(t);
    long long u = 0, v = 0;
    if (fields.size() < 2 || !parse_int(fields[0], u) ||
        !parse_int(fields[1], v)) {
      skip_record(line_no_, "bad edge list line");
      resync_to_blank();
      return std::nullopt;
    }
    raw.emplace_back(u, v);
    compact.emplace(u, 0);
    compact.emplace(v, 0);
  }
  if (start_line == 0) return std::nullopt;  // only blanks/comments left
  if (compact.empty()) {
    skip_record(start_line, "empty graph record");
    return std::nullopt;
  }
  Vertex next = 0;
  for (auto& [id, mapped] : compact) mapped = next++;
  GraphBuilder builder(next);
  for (auto [u, v] : raw) builder.add_edge(compact.at(u), compact.at(v));
  CorpusRecord rec;
  rec.index = next_index_++;
  rec.line = start_line;
  rec.graph = builder.build();
  return rec;
}

void write_gspan(std::ostream& out, const CsrGraph& g, const std::string& id) {
  out << "t # " << id << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) out << "v " << v << " 0\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (Vertex u : g.neighbors(v))
      if (u > v) out << "e " << v << ' ' << u << " 0\n";
}

}  // namespace gvc::graph
