#include "graph/stats.hpp"

#include <algorithm>

#include "graph/ops.hpp"
#include "util/strings.hpp"

namespace gvc::graph {

GraphStats compute_stats(const CsrGraph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices > 0) {
    s.avg_degree = g.average_degree();
    s.edge_vertex_ratio =
        static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
    s.min_degree = g.degree(0);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      s.max_degree = std::max(s.max_degree, g.degree(v));
      s.min_degree = std::min(s.min_degree, g.degree(v));
    }
  }
  s.degeneracy = degeneracy(g);
  s.components = num_connected_components(g);
  s.triangles = triangle_count(g);
  return s;
}

std::string GraphStats::to_string() const {
  return util::format(
      "|V|=%d |E|=%lld |E|/|V|=%.2f deg[min=%d max=%d avg=%.2f] "
      "degeneracy=%d components=%d triangles=%lld",
      num_vertices, static_cast<long long>(num_edges), edge_vertex_ratio,
      min_degree, max_degree, avg_degree, degeneracy, components,
      static_cast<long long>(triangles));
}

bool is_high_degree(const GraphStats& s) { return s.edge_vertex_ratio >= 10.0; }

}  // namespace gvc::graph
