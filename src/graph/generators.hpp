#pragma once

// Graph generators.
//
// These supply (a) the benchmark instance families — the DIMACS p_hat
// construction whose complements the paper evaluates, plus structural
// stand-ins for the KONECT/SNAP/PACE graphs we cannot redistribute — and
// (b) small fixture graphs for the test suites.
//
// Every generator is deterministic given its seed.

#include <cstdint>

#include "graph/csr.hpp"

namespace gvc::graph {

/// Erdős–Rényi G(n, p). Uses geometric edge skipping, O(|E|) expected time.
CsrGraph gnp(Vertex n, double p, std::uint64_t seed);

/// DIMACS "p_hat" family generator (Gendreau–Soriano–Salvail construction):
/// each vertex i draws a propensity a(i) uniform in [p_low, p_high]; edge
/// {i,j} is present with probability (a(i)+a(j))/2. Compared to G(n,p) at the
/// same density this produces a much wider degree spread, which is exactly
/// what makes the p_hat clique instances (and their complements, used for
/// vertex cover) hard and imbalanced.
CsrGraph p_hat(Vertex n, double p_low, double p_high, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to m
/// existing vertices chosen proportionally to degree. Power-law stand-in for
/// the wikipedia link graphs.
CsrGraph barabasi_albert(Vertex n, int m, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta. Stand-in for social graphs
/// (LastFM Asia).
CsrGraph watts_strogatz(Vertex n, int k, double beta, std::uint64_t seed);

/// Sparse quasi-planar "power grid": a random spanning tree over n vertices
/// plus extra_edge_frac*n shortcut edges between near-in-tree vertices.
/// Matches the |E|/|V| ≈ 1.3 regime of the US power grid instance.
CsrGraph power_grid(Vertex n, double extra_edge_frac, std::uint64_t seed);

/// Random bipartite graph with the given number of edges between the two
/// sides (vertices 0..n_left-1 vs n_left..n_left+n_right-1). Stand-in for the
/// movielens rating graph.
CsrGraph bipartite(Vertex n_left, Vertex n_right, std::int64_t edges,
                   std::uint64_t seed);

/// Uniform random labeled tree (Prüfer sequence).
CsrGraph random_tree(Vertex n, std::uint64_t seed);

// --- Deterministic fixtures -------------------------------------------------

CsrGraph empty_graph(Vertex n);
CsrGraph complete(Vertex n);
CsrGraph path(Vertex n);
CsrGraph cycle(Vertex n);
/// Star with n-1 leaves attached to vertex 0.
CsrGraph star(Vertex n);
CsrGraph complete_bipartite(Vertex a, Vertex b);
/// The Petersen graph (10 vertices, 15 edges, MVC size 6).
CsrGraph petersen();
/// 2D grid graph rows x cols with 4-neighborhood.
CsrGraph grid2d(Vertex rows, Vertex cols);

}  // namespace gvc::graph
